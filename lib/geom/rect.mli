(** Axis-aligned rectangles (micrometres). *)

type t = private {
  x : Interval.t;
  y : Interval.t;
}

(** [make p q] is the bounding rectangle of two corner points. *)
val make : Point.t -> Point.t -> t

val of_intervals : x:Interval.t -> y:Interval.t -> t
val width : t -> float
val height : t -> float
val area : t -> float
val center : t -> Point.t
val contains : t -> Point.t -> bool

(** [hull a b] is the smallest rectangle containing both. *)
val hull : t -> t -> t

(** [bounding points] is the bounding box of a non-empty point list.
    Raises [Invalid_argument] on the empty list. *)
val bounding : Point.t list -> t

val pp : Format.formatter -> t -> unit
