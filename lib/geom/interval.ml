type t = {
  lo : float;
  hi : float;
}

let make a b = if a <= b then { lo = a; hi = b } else { lo = b; hi = a }
let length { lo; hi } = hi -. lo
let contains { lo; hi } x = lo <= x && x <= hi

let intersect a b =
  let lo = Float.max a.lo b.lo and hi = Float.min a.hi b.hi in
  if lo <= hi then Some { lo; hi } else None

let overlap_length a b =
  match intersect a b with
  | None -> 0.
  | Some i -> length i

let hull a b = { lo = Float.min a.lo b.lo; hi = Float.max a.hi b.hi }
let expand i by = { lo = i.lo -. by; hi = i.hi +. by }
let overlaps ?(eps = 0.) a b = a.lo <= b.hi +. eps && b.lo <= a.hi +. eps

let equal ?(eps = 1e-9) a b =
  Float.abs (a.lo -. b.lo) <= eps && Float.abs (a.hi -. b.hi) <= eps

let pp ppf { lo; hi } = Format.fprintf ppf "[%.4f, %.4f]" lo hi
