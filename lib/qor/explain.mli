(** Per-element attribution behind [ccgen explain]: which wire segment,
    via stack, or unit capacitor a QoR number comes from.

    Two decompositions of one flow result:

    - {b delay}: the worst-bit Elmore delay split over the physical
      elements (via stacks, wire segments per layer, plate abutments) of
      the critical capacitor's root-to-worst-cell path, via
      {!Extract.Netbuild.attribution} /  {!Rcnet.Elmore.breakdown}.  The
      element delays sum to [delay_total_fs] exactly (up to float
      association).
    - {b INL}: the worst-code INL split per capacitor (plus the
      top-plate-parasitic pseudo-element), via
      {!Dacmodel.Nonlinearity.attribute}.  The element totals sum to
      [inl_lsb] exactly. *)

type delay_element = {
  de_label : string;       (** e.g. ["strap ch2->cell(3,4)"] *)
  de_kind : string;        (** ["via"], ["wire"], ["plate"] *)
  de_layer : string;       (** ["M1"], ["M3"], ["via"], ["plate"] *)
  de_r_ohm : float;
  de_c_ff : float;         (** capacitance charged through the element *)
  de_delay_fs : float;
  de_share : float;        (** fraction of [delay_total_fs] *)
}

type inl_element = {
  ie_name : string;        (** ["C_3"], or ["top-plate parasitic"] *)
  ie_on : bool;            (** switched to [V_REF] at the worst code *)
  ie_systematic_lsb : float;
  ie_random_lsb : float;
  ie_total_lsb : float;
  ie_share : float;        (** signed fraction of [inl_lsb] *)
}

type t = {
  style : string;
  bits : int;
  critical_bit : int;
  worst_cell : string;            (** ["cell(2,5)"] *)
  delay_total_fs : float;         (** sum of the element delays *)
  tau_fs : float;                 (** the flow's reported time constant *)
  f3db_mhz : float;
  delay_elements : delay_element list;  (** root-first path order *)
  inl_code : int;                 (** argmax |INL| *)
  inl_lsb : float;
  max_inl_lsb : float;            (** the flow's reported max |INL| *)
  inl_elements : inl_element list;      (** capacitor order, parasitic last *)
}

(** [of_result r] builds both decompositions from a flow result.
    Records a [qor.explain] span and the [qor/explain_elements] gauge. *)
val of_result : Ccdac.Flow.result -> t

(** [text ?top t] renders both tables, largest-|share| first, keeping
    the [top] biggest delay contributors (default 10; INL elements are
    few and always all shown). *)
val text : ?top:int -> t -> string

(** Full element lists, no truncation. *)
val to_json : t -> Telemetry.Json.t
