(** Where a QoR record came from: enough context to interpret a ledger
    entry months later, cheap enough to capture on every run.

    The git commit is read straight from [.git/HEAD] (following one level
    of [ref:] indirection through loose refs and [packed-refs]) — no
    subprocess, and absence is not an error: records written outside a
    checkout simply carry no commit. *)

type t = {
  timestamp_s : float;        (** Unix time the record was captured *)
  host : string;
  git_commit : string option; (** full hex sha, when inside a checkout *)
}

(** [capture ()] stamps the current time, hostname, and (best-effort) the
    git commit of the working directory or any of its ancestors. *)
val capture : unit -> t

val to_json : t -> Telemetry.Json.t

(** Total: missing fields decay to [0.] / [""] / [None], never an error —
    provenance must not make an old ledger unreadable. *)
val of_json : Telemetry.Json.t -> t
