module Json = Telemetry.Json

let save ~path records =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
       output_string oc "{\"version\": 1, \"records\": [\n";
       List.iteri
         (fun i r ->
            if i > 0 then output_string oc ",\n";
            output_string oc (Json.to_string (Record.to_json r)))
         records;
       output_string oc "\n]}\n")

let load ~path =
  match
    In_channel.with_open_text path In_channel.input_all |> Json.parse
  with
  | Ok doc ->
    (match Option.bind (Json.member "records" doc) Json.to_list with
     | Some entries ->
       let records =
         List.filter_map
           (fun j -> match Record.of_json j with Ok r -> Some r | Error _ -> None)
           entries
       in
       if records = [] then
         Error (path ^ ": baseline document contains no parseable record")
       else Ok records
     | None ->
       Error
         (path
          ^ ": not a baseline document ({\"version\", \"records\": [...]})"))
  | Error _ ->
    (* not one JSON document: try the JSONL ledger shape *)
    (match Ledger.load ~path with
     | [], _ -> Error (path ^ ": neither a baseline document nor a ledger")
     | records, _ -> Ok (Ledger.latest_by_label records))
  | exception Sys_error e -> Error e
