module Json = Telemetry.Json

type t = {
  timestamp_s : float;
  host : string;
  git_commit : string option;
}

let read_file path =
  try Some (In_channel.with_open_text path In_channel.input_all)
  with Sys_error _ -> None

let first_line s =
  match String.index_opt s '\n' with
  | Some i -> String.sub s 0 i
  | None -> s

let is_hex s =
  String.length s >= 7
  && String.for_all
       (function '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true | _ -> false)
       s

(* Resolve a symbolic ref against loose refs first, then packed-refs. *)
let resolve_ref gitdir name =
  match read_file (Filename.concat gitdir name) with
  | Some s ->
    let s = String.trim (first_line s) in
    if is_hex s then Some s else None
  | None ->
    (match read_file (Filename.concat gitdir "packed-refs") with
     | None -> None
     | Some packed ->
       String.split_on_char '\n' packed
       |> List.find_map (fun line ->
           match String.index_opt line ' ' with
           | Some i when String.sub line (i + 1) (String.length line - i - 1)
                         = name ->
             let sha = String.sub line 0 i in
             if is_hex sha then Some sha else None
           | Some _ | None -> None))

let commit_of_gitdir gitdir =
  match read_file (Filename.concat gitdir "HEAD") with
  | None -> None
  | Some head ->
    let head = String.trim (first_line head) in
    (match
       if String.length head > 5 && String.sub head 0 5 = "ref: " then
         resolve_ref gitdir
           (String.trim (String.sub head 5 (String.length head - 5)))
       else if is_hex head then Some head
       else None
     with
     | Some sha -> Some sha
     | None -> None)

let git_commit () =
  let rec up dir depth =
    if depth > 16 then None
    else
      let gitdir = Filename.concat dir ".git" in
      if Sys.file_exists gitdir && Sys.is_directory gitdir then
        commit_of_gitdir gitdir
      else
        let parent = Filename.dirname dir in
        if parent = dir then None else up parent (depth + 1)
  in
  try up (Sys.getcwd ()) 0 with Sys_error _ -> None

let capture () =
  { timestamp_s = Unix.gettimeofday ();
    host = (try Unix.gethostname () with Unix.Unix_error _ -> "unknown");
    git_commit = git_commit () }

let to_json t =
  Json.Obj
    [ ("timestamp_s", Json.Num t.timestamp_s);
      ("host", Json.Str t.host);
      ( "git_commit",
        match t.git_commit with None -> Json.Null | Some s -> Json.Str s ) ]

let of_json j =
  let num name d =
    match Option.bind (Json.member name j) Json.to_float with
    | Some v -> v
    | None -> d
  in
  let str name d =
    match Option.bind (Json.member name j) Json.to_str with
    | Some v -> v
    | None -> d
  in
  { timestamp_s = num "timestamp_s" 0.;
    host = str "host" "";
    git_commit = Option.bind (Json.member "git_commit" j) Json.to_str }
