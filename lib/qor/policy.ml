type sense =
  | Higher_better
  | Lower_better
  | Neither

type kind =
  | Rel of {
      tol : float;
      floor : float;
      repeat_aware : bool;
    }
  | Abs of { tol : float }
  | Exact_count
  | Exact_set

type t = {
  id : string;
  metric : string;
  unit_ : string;
  kind : kind;
  sense : sense;
  severity : Verify.Rule.severity;
}

type observation =
  | Scalar of float
  | Count of int
  | Set of string list

type verdict =
  | Improved
  | Unchanged
  | Regressed
  | Incomparable

let verdict_name = function
  | Improved -> "improved"
  | Unchanged -> "unchanged"
  | Regressed -> "regressed"
  | Incomparable -> "incomparable"

(* Positive badness = worse.  [Neither] folds both directions into bad,
   so no Exact-like metric ever "improves" past its tolerance. *)
let badness sense delta =
  match sense with
  | Lower_better -> delta
  | Higher_better -> -.delta
  | Neither -> Float.abs delta

(* Inclusive thresholds: exactly-at-tolerance is Unchanged. *)
let classify sense ~tol delta =
  let b = badness sense delta in
  if b > tol then Regressed else if b < -.tol then Improved else Unchanged

let set_diff a b = List.filter (fun x -> not (List.mem x b)) a

let judge policy ~repeat ~baseline ~current =
  let nan_guard base cur k =
    if Float.is_nan base || Float.is_nan cur then
      ( Incomparable,
        Printf.sprintf "%s: baseline %g, current %g — NaN is never comparable"
          policy.metric base cur )
    else k ()
  in
  match policy.kind, baseline, current with
  | Rel { tol; floor; repeat_aware }, Scalar base, Scalar cur ->
    nan_guard base cur @@ fun () ->
    let floor =
      if repeat_aware then floor /. Float.sqrt (float_of_int (max 1 repeat))
      else floor
    in
    if Float.abs base <= floor && Float.abs cur <= floor then
      ( Unchanged,
        Printf.sprintf "%s: %g -> %g %s, both at or under the %g noise floor"
          policy.metric base cur policy.unit_ floor )
    else begin
      let denom = Float.max (Float.abs base) floor in
      let rel = (cur -. base) /. denom in
      let v = classify policy.sense ~tol rel in
      ( v,
        Printf.sprintf "%s: %g -> %g %s (%+.2f%% vs +-%.2f%% tolerance)"
          policy.metric base cur policy.unit_ (100. *. rel) (100. *. tol) )
    end
  | Abs { tol }, Scalar base, Scalar cur ->
    nan_guard base cur @@ fun () ->
    let v = classify policy.sense ~tol (cur -. base) in
    ( v,
      Printf.sprintf "%s: %g -> %g %s (%+g vs +-%g tolerance)" policy.metric
        base cur policy.unit_ (cur -. base) tol )
  | Exact_count, Count base, Count cur ->
    if base = cur then
      (Unchanged, Printf.sprintf "%s: %d, exact match" policy.metric cur)
    else
      ( Regressed,
        Printf.sprintf "%s: %d -> %d, exact metric drifted" policy.metric
          base cur )
  | Exact_set, Set base, Set cur ->
    let base = List.sort_uniq String.compare base
    and cur = List.sort_uniq String.compare cur in
    if base = cur then
      ( Unchanged,
        Printf.sprintf "%s: {%s}, exact match" policy.metric
          (String.concat ", " cur) )
    else begin
      let appeared = set_diff cur base and vanished = set_diff base cur in
      let part what = function
        | [] -> None
        | ids -> Some (Printf.sprintf "%s {%s}" what (String.concat ", " ids))
      in
      ( Regressed,
        Printf.sprintf "%s: %s" policy.metric
          (String.concat ", "
             (List.filter_map Fun.id
                [ part "appeared" appeared; part "vanished" vanished ])) )
    end
  | (Rel _ | Abs _ | Exact_count | Exact_set), _, _ ->
    ( Incomparable,
      Printf.sprintf "%s: observation shapes disagree with the %s policy"
        policy.metric
        (match policy.kind with
         | Rel _ -> "relative"
         | Abs _ -> "absolute"
         | Exact_count -> "exact-count"
         | Exact_set -> "exact-set") )

(* The committed catalogue.  Electrical metrics are deterministic
   analytic results, so they carry Error severity and tight tolerances;
   wall-clock times are machine-dependent, so they are Warnings with a
   generous repeat-aware floor — a sub-50 ms stage never fires even
   under --werror on a noisy CI box. *)
let catalogue =
  [ { id = "qor/f3db_mhz";
      metric = "f3dB";
      unit_ = "MHz";
      kind = Rel { tol = 0.02; floor = 1e-3; repeat_aware = false };
      sense = Higher_better;
      severity = Verify.Rule.Error };
    { id = "qor/max_inl_lsb";
      metric = "max |INL|";
      unit_ = "LSB";
      kind = Abs { tol = 0.005 };
      sense = Lower_better;
      severity = Verify.Rule.Error };
    { id = "qor/max_dnl_lsb";
      metric = "max |DNL|";
      unit_ = "LSB";
      kind = Abs { tol = 0.005 };
      sense = Lower_better;
      severity = Verify.Rule.Error };
    { id = "qor/via_cuts";
      metric = "via cuts";
      unit_ = "1";
      kind = Exact_count;
      sense = Neither;
      severity = Verify.Rule.Error };
    { id = "qor/bends";
      metric = "bends";
      unit_ = "1";
      kind = Exact_count;
      sense = Neither;
      severity = Verify.Rule.Warning };
    { id = "qor/wirelength_um";
      metric = "wirelength";
      unit_ = "um";
      kind = Rel { tol = 0.01; floor = 1e-6; repeat_aware = false };
      sense = Lower_better;
      severity = Verify.Rule.Warning };
    { id = "qor/area_um2";
      metric = "area";
      unit_ = "um^2";
      kind = Rel { tol = 0.001; floor = 1e-6; repeat_aware = false };
      sense = Lower_better;
      severity = Verify.Rule.Warning };
    { id = "qor/place_route_s";
      metric = "place+route time";
      unit_ = "s";
      kind = Rel { tol = 0.5; floor = 0.05; repeat_aware = true };
      sense = Lower_better;
      severity = Verify.Rule.Warning };
    (* Allocation totals are near-deterministic (same code path, same
       allocations), but GC scheduling varies across machines and
       OCAMLRUNPARAM settings, so the memory metrics are Warnings with
       generous tolerances: allocation within 25% above a 1 MB floor,
       peak heap within 50% above a 16 MB floor (heap sizing is the
       runtime's choice), and major collections within +-8. *)
    { id = "qor/alloc_mb_total";
      metric = "allocated";
      unit_ = "MB";
      kind = Rel { tol = 0.25; floor = 1.0; repeat_aware = false };
      sense = Lower_better;
      severity = Verify.Rule.Warning };
    { id = "qor/peak_heap_mb";
      metric = "peak heap";
      unit_ = "MB";
      kind = Rel { tol = 0.5; floor = 16.0; repeat_aware = false };
      sense = Lower_better;
      severity = Verify.Rule.Warning };
    { id = "qor/major_collections";
      metric = "major GCs";
      unit_ = "1";
      kind = Abs { tol = 8. };
      sense = Lower_better;
      severity = Verify.Rule.Warning };
    (* Scaling/scheduler metrics exist only in records decorated by the
       scaling probe (bench scaling / ccgen scale).  Growth exponents
       are stable properties of the algorithms, so they get an absolute
       tolerance (a drift of +0.35 in the worst exponent means a stage
       changed complexity class, not just speed); pool utilization and
       caller stall are machine- and load-dependent, so they are
       generous relative Warnings like the other wall-clock metrics. *)
    { id = "qor/scaling_exponent";
      metric = "worst growth exponent";
      unit_ = "1";
      kind = Abs { tol = 0.35 };
      sense = Lower_better;
      severity = Verify.Rule.Warning };
    { id = "qor/sched_utilization";
      metric = "pool utilization";
      unit_ = "1";
      kind = Rel { tol = 0.5; floor = 0.05; repeat_aware = false };
      sense = Higher_better;
      severity = Verify.Rule.Warning };
    { id = "qor/sched_caller_blocked_s";
      metric = "caller barrier stall";
      unit_ = "s";
      kind = Rel { tol = 1.0; floor = 0.05; repeat_aware = true };
      sense = Lower_better;
      severity = Verify.Rule.Warning };
    (* Serve metrics exist only in records decorated by the bench serve
       load generator.  Throughput and latency are machine-dependent
       wall-clock figures, so they get the generous relative Warnings;
       the cache hit-rate is a property of the mix and the cache key, so
       its tolerance is tight — losing hits means the content address
       changed or the cache stopped working. *)
    { id = "qor/serve_throughput_rps";
      metric = "serve throughput";
      unit_ = "req/s";
      kind = Rel { tol = 0.5; floor = 10.0; repeat_aware = false };
      sense = Higher_better;
      severity = Verify.Rule.Warning };
    { id = "qor/serve_p95_ms";
      metric = "serve p95 latency";
      unit_ = "ms";
      kind = Rel { tol = 1.0; floor = 0.5; repeat_aware = false };
      sense = Lower_better;
      severity = Verify.Rule.Warning };
    { id = "qor/serve_hit_rate";
      metric = "serve cache hit-rate";
      unit_ = "1";
      kind = Rel { tol = 0.1; floor = 0.02; repeat_aware = false };
      sense = Higher_better;
      severity = Verify.Rule.Warning };
    { id = "qor/verify_rules";
      metric = "verify rule ids";
      unit_ = "1";
      kind = Exact_set;
      sense = Neither;
      severity = Verify.Rule.Error };
    { id = "qor/lvs_rules";
      metric = "LVS rule ids";
      unit_ = "1";
      kind = Exact_set;
      sense = Neither;
      severity = Verify.Rule.Error };
    { id = "qor/tech_hash";
      metric = "tech hash";
      unit_ = "1";
      kind = Exact_set;
      sense = Neither;
      severity = Verify.Rule.Warning } ]

let find id = List.find_opt (fun p -> String.equal p.id id) catalogue
