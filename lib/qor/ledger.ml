module Json = Telemetry.Json

(* Appends take an advisory whole-file lock (lockf at offset 0 right
   after open, before any write): concurrent appenders — serve daemon
   requests, a parallel `make bench`, several processes sharing one
   ledger — serialise on it, so JSONL lines never interleave partially.
   The lock is released by the close in [finally]; within one process,
   O_APPEND single-write atomicity already keeps domains whole-line. *)
let append ~path record =
  let oc =
    open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path
  in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
       Unix.lockf (Unix.descr_of_out_channel oc) Unix.F_LOCK 0;
       output_string oc (Json.to_string (Record.to_json record));
       output_char oc '\n');
  if Telemetry.Metrics.enabled () then
    Telemetry.Metrics.incr "qor/records_total"

let load ~path =
  let lines =
    In_channel.with_open_text path @@ fun ic ->
    let rec go acc n =
      match In_channel.input_line ic with
      | Some l -> go ((n, l) :: acc) (n + 1)
      | None -> List.rev acc
    in
    go [] 1
  in
  let records, complaints =
    List.fold_left
      (fun (rs, cs) (n, line) ->
         if String.trim line = "" then (rs, cs)
         else
           match Json.parse line with
           | Error e ->
             (rs, Printf.sprintf "%s:%d: unparseable line (%s)" path n e :: cs)
           | Ok j ->
             (match Record.of_json j with
              | Ok r -> (r :: rs, cs)
              | Error e -> (rs, Printf.sprintf "%s:%d: %s" path n e :: cs)))
      ([], []) lines
  in
  let records = List.rev records in
  if Telemetry.Metrics.enabled () then
    Telemetry.Metrics.set "qor/ledger_records"
      (float_of_int (List.length records));
  (records, List.rev complaints)

let latest_by_label records =
  let order = ref [] in
  let latest = Hashtbl.create 16 in
  List.iter
    (fun (r : Record.t) ->
       if not (Hashtbl.mem latest r.Record.label) then
         order := r.Record.label :: !order;
       Hashtbl.replace latest r.Record.label r)
    records;
  List.rev_map (fun l -> Hashtbl.find latest l) !order
