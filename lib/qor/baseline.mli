(** The committed reference the sentinel diffs against:
    [BENCH_baseline.json], a single JSON document

    {v
    {"version": 1, "records": [ <QoR record>, ... ]}
    v}

    kept in one file (not JSONL) so it diffs readably in review.  {!load}
    also accepts a bare JSONL ledger, so a ledger file can serve directly
    as a baseline. *)

(** [save ~path records] writes the document, one record per line inside
    the array.  Raises [Sys_error] when the path cannot be written. *)
val save : path:string -> Record.t list -> unit

(** [load ~path] reads either shape.  [Error] on unreadable file,
    unparseable document, or a document with no parseable record. *)
val load : path:string -> (Record.t list, string) result
