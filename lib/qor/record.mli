(** One schema-versioned QoR record: everything a {!Ledger} line or a
    {!Baseline} entry stores about one flow run.

    The schema evolves by {e addition}: {!of_json} fills fields a record
    written by older code lacks with neutral defaults ([nan] for scalars,
    [0] for counts, [[]] for rule sets) and ignores fields it does not
    know, so new code reads old ledgers and vice versa.  A record whose
    [schema_version] is {e newer} than {!schema_version} still parses —
    the skew is the caller's to surface ({!Compare} downgrades such
    comparisons to warnings). *)

type t = {
  schema_version : int;
  label : string;              (** ["spiral b8"] — the comparison key *)
  style : string;
  bits : int;
  tech_name : string;
  tech_hash : string;          (** {!tech_hash} of the process used *)
  repeat : int;                (** runs the timings are a median of *)
  jobs : int;                  (** worker count the run was recorded at *)
  par_speedup : float;         (** measured {!Ccdac.Parbench} speedup at
                                   [jobs] ([nan] when not measured) *)
  stage_s : (string * float) list;  (** per-stage seconds, execution order *)
  place_route_s : float;       (** Table III runtime (place + route) *)
  stage_alloc_mb : (string * float) list;
                               (** per-stage allocated MB — empty unless
                                   {!Telemetry.Memory} sampling was on *)
  alloc_mb_total : float;      (** whole-flow allocation, MB ([nan] when
                                   not sampled) *)
  peak_heap_mb : float;        (** peak major heap, MB ([nan] when not
                                   sampled) *)
  major_collections : int;     (** whole-flow major GCs (0 when not
                                   sampled) *)
  f3db_mhz : float;
  max_inl_lsb : float;
  max_dnl_lsb : float;
  tau_fs : float;
  critical_bit : int;
  via_cuts : int;              (** total physical via cuts *)
  bends : int;
  wirelength_um : float;
  area_um2 : float;
  verify_rules : string list;  (** sorted rule ids fired by the linter *)
  lvs_rules : string list;     (** sorted rule ids fired by LVS *)
  stage_exponent : (string * float) list;
                               (** fitted per-stage growth exponents from
                                   a {!Ccdac.Scaling} ladder — empty for
                                   a plain flow record *)
  sched_utilization : float;   (** {!Par.Sched} pool busy fraction over
                                   the run ([nan] when not recorded) *)
  sched_queue_depth_max : int; (** deepest observed chunk backlog (0 when
                                   not recorded) *)
  sched_caller_blocked_s : float;
                               (** caller time asleep on batch barriers
                                   ([nan] when not recorded) *)
  serve_requests : int;        (** requests replayed by a [bench serve]
                                   run (0 for a plain flow record) *)
  serve_throughput_rps : float;
                               (** client-observed requests per second
                                   ([nan] when not a serve row) *)
  serve_p50_ms : float;        (** median request latency, ms *)
  serve_p95_ms : float;        (** 95th-percentile request latency, ms *)
  serve_hit_rate : float;      (** result-cache hit fraction of the ok
                                   responses, in [0, 1] *)
  provenance : Provenance.t;
}

(** The version this code writes. *)
val schema_version : int

(** [label ~style ~bits] is the comparison key, e.g. ["spiral b8"]. *)
val label : style:string -> bits:int -> string

(** [tech_hash tech] is a 16-hex-digit FNV-1a digest of every field of
    the process description (stack included).  Two records with equal
    hashes were measured under the same technology. *)
val tech_hash : Tech.Process.t -> string

(** [of_result ?repeat ?jobs ?par_speedup r] captures a record from a
    flow result, re-runs the registry linter and LVS to collect the fired
    rule-id sets, and stamps provenance.  [repeat] (default 1) documents
    how many runs the timings were medianed over; [jobs] (default 1) the
    worker count; [par_speedup] (default [nan]) a measured
    {!Ccdac.Parbench} speedup — none of them rerun anything. *)
val of_result :
  ?repeat:int -> ?jobs:int -> ?par_speedup:float -> Ccdac.Flow.result -> t

(** [with_scaling ?stage_exponent ?sched_utilization ?sched_queue_depth_max
    ?sched_caller_blocked_s t] decorates a record with the scaling-probe
    and scheduler figures ({!Ccdac.Scaling}, {!Par.Sched.summary});
    omitted arguments keep the neutral "not sampled" defaults. *)
val with_scaling :
  ?stage_exponent:(string * float) list ->
  ?sched_utilization:float ->
  ?sched_queue_depth_max:int ->
  ?sched_caller_blocked_s:float ->
  t ->
  t

(** [with_serve ~requests ~throughput_rps ~p50_ms ~p95_ms ~hit_rate t]
    decorates a record with what a [bench serve] load generator measured
    ({!Serve.Loadgen} in the serve library); plain flow records keep the
    neutral "not sampled" defaults and stay unsampled for the
    qor/serve_* policies. *)
val with_serve :
  requests:int ->
  throughput_rps:float ->
  p50_ms:float ->
  p95_ms:float ->
  hit_rate:float ->
  t ->
  t

val to_json : t -> Telemetry.Json.t

(** Total modulo shape: [Error] only when the value is not an object.
    Missing fields decay to neutral defaults as described above. *)
val of_json : Telemetry.Json.t -> (t, string) result
