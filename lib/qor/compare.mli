(** The regression sentinel: diff current QoR records against a
    baseline under the {!Policy} catalogue and report verdicts in the
    [Verify.Report] text/JSON conventions.

    Records pair up by [label] ([style b<bits>]).  A baseline label with
    no current record is a {e coverage} failure ([qor/coverage], Error):
    silently dropping a configuration must not read as "no regression".
    Current labels absent from the baseline are reported as warnings but
    never gate — new configurations are not regressions.  Schema-version
    skew and tech-hash drift are surfaced (the latter through the
    [qor/tech_hash] policy) so cross-technology diffs read as advisory,
    not as electrical regressions. *)

type finding = {
  policy : Policy.t;
  label : string;            (** which configuration, e.g. ["spiral b8"] *)
  verdict : Policy.verdict;
  detail : string;
}

type t = {
  findings : finding list;   (** sorted: failing first, then severity, id,
                                 label — deterministic like Verify.Report *)
  warnings : string list;    (** non-gating notes: new labels, schema skew *)
}

(** The pseudo-policy behind coverage failures. *)
val coverage_policy : Policy.t

(** [compare_records ~baseline ~current] is one pair's findings — one
    per catalogue policy. *)
val compare_records : baseline:Record.t -> current:Record.t -> finding list

(** [diff ~baseline ~current] pairs up by label and compares. *)
val diff : baseline:Record.t list -> current:Record.t list -> t

(** [failing ?werror t] is the findings that disqualify: verdict
    [Regressed] or [Incomparable], of [Error] severity — or any severity
    under [werror].  Empty means the gate passes. *)
val failing : ?werror:bool -> t -> finding list

(** [gate ?werror t] is [Error (failing t)] when disqualifying findings
    exist, mirroring [Verify.Engine.gate]. *)
val gate : ?werror:bool -> t -> (unit, finding list) result

(** ["clean"] or e.g. ["2 regressed, 1 incomparable, 3 improved"]. *)
val summary_line : t -> string

(** One line per finding plus the summary line (and warnings, when
    any) — the terminal form. *)
val text : t -> string

(** [{"version": 1, "summary": {...}, "findings": [...],
    "warnings": [...]}] — the machine form. *)
val to_json : t -> Telemetry.Json.t
