module Json = Telemetry.Json

type t = {
  schema_version : int;
  label : string;
  style : string;
  bits : int;
  tech_name : string;
  tech_hash : string;
  repeat : int;
  jobs : int;
  par_speedup : float;
  stage_s : (string * float) list;
  place_route_s : float;
  stage_alloc_mb : (string * float) list;
  alloc_mb_total : float;
  peak_heap_mb : float;
  major_collections : int;
  f3db_mhz : float;
  max_inl_lsb : float;
  max_dnl_lsb : float;
  tau_fs : float;
  critical_bit : int;
  via_cuts : int;
  bends : int;
  wirelength_um : float;
  area_um2 : float;
  verify_rules : string list;
  lvs_rules : string list;
  stage_exponent : (string * float) list;
  sched_utilization : float;
  sched_queue_depth_max : int;
  sched_caller_blocked_s : float;
  serve_requests : int;
  serve_throughput_rps : float;
  serve_p50_ms : float;
  serve_p95_ms : float;
  serve_hit_rate : float;
  provenance : Provenance.t;
}

let schema_version = 1

let label ~style ~bits = Printf.sprintf "%s b%d" style bits

(* FNV-1a 64-bit over a canonical rendering of every Process field.  The
   canonical string spells each float with %h (hex, lossless) so the hash
   is a function of the exact values, not of printf rounding. *)
let tech_hash (tech : Tech.Process.t) =
  let b = Buffer.create 256 in
  let f x = Buffer.add_string b (Printf.sprintf "%h;" x) in
  let s x =
    Buffer.add_string b x;
    Buffer.add_char b ';'
  in
  s tech.Tech.Process.name;
  List.iter
    (fun (l : Tech.Layer.t) ->
       s (Format.asprintf "%a" Tech.Layer.pp_name l.Tech.Layer.name);
       s (Geom.Axis.to_string l.Tech.Layer.direction);
       f l.Tech.Layer.resistance;
       f l.Tech.Layer.capacitance;
       f l.Tech.Layer.coupling)
    tech.Tech.Process.stack;
  f tech.Tech.Process.via_resistance;
  f tech.Tech.Process.plate_resistance;
  f tech.Tech.Process.wire_pitch;
  f tech.Tech.Process.cell_width;
  f tech.Tech.Process.cell_height;
  f tech.Tech.Process.cell_spacing;
  f tech.Tech.Process.unit_cap;
  f tech.Tech.Process.top_substrate_cap;
  f tech.Tech.Process.gradient_ppm;
  f tech.Tech.Process.gradient_theta;
  f tech.Tech.Process.rho_u;
  f tech.Tech.Process.corr_length;
  f tech.Tech.Process.mismatch_coeff;
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
       h := Int64.logxor !h (Int64.of_int (Char.code c));
       h := Int64.mul !h 0x100000001b3L)
    (Buffer.contents b);
  Printf.sprintf "%016Lx" !h

let of_result ?(repeat = 1) ?(jobs = 1) ?(par_speedup = Float.nan)
    (r : Ccdac.Flow.result) =
  let style = Ccplace.Style.name r.Ccdac.Flow.style in
  let p = r.Ccdac.Flow.parasitics in
  { schema_version;
    label = label ~style ~bits:r.Ccdac.Flow.bits;
    style;
    bits = r.Ccdac.Flow.bits;
    tech_name = r.Ccdac.Flow.tech.Tech.Process.name;
    tech_hash = tech_hash r.Ccdac.Flow.tech;
    repeat;
    jobs;
    par_speedup;
    stage_s = r.Ccdac.Flow.telemetry.Telemetry.Summary.stages;
    place_route_s = r.Ccdac.Flow.elapsed_place_route_s;
    stage_alloc_mb =
      List.map
        (fun (n, d) -> (n, Telemetry.Memory.allocated_mb d))
        (Telemetry.Summary.memory_stages r.Ccdac.Flow.telemetry);
    alloc_mb_total =
      (match Telemetry.Summary.total_memory r.Ccdac.Flow.telemetry with
       | Some d -> Telemetry.Memory.allocated_mb d
       | None -> Float.nan);
    peak_heap_mb =
      (match Telemetry.Summary.total_memory r.Ccdac.Flow.telemetry with
       | Some d -> Telemetry.Memory.peak_heap_mb d
       | None -> Float.nan);
    major_collections =
      (match Telemetry.Summary.total_memory r.Ccdac.Flow.telemetry with
       | Some d -> d.Telemetry.Memory.major_collections
       | None -> 0);
    f3db_mhz = r.Ccdac.Flow.f3db_mhz;
    max_inl_lsb = r.Ccdac.Flow.max_inl;
    max_dnl_lsb = r.Ccdac.Flow.max_dnl;
    tau_fs = r.Ccdac.Flow.tau_fs;
    critical_bit = r.Ccdac.Flow.critical_bit;
    via_cuts = p.Extract.Parasitics.total_via_cuts;
    bends = p.Extract.Parasitics.total_bends;
    wirelength_um = p.Extract.Parasitics.total_wirelength;
    area_um2 = r.Ccdac.Flow.area;
    verify_rules =
      Verify.Diagnostic.rule_ids
        (Verify.Engine.check_artifacts r.Ccdac.Flow.layout);
    lvs_rules =
      Verify.Diagnostic.rule_ids (Lvs.Check.check r.Ccdac.Flow.layout);
    stage_exponent = [];
    sched_utilization = Float.nan;
    sched_queue_depth_max = 0;
    sched_caller_blocked_s = Float.nan;
    serve_requests = 0;
    serve_throughput_rps = Float.nan;
    serve_p50_ms = Float.nan;
    serve_p95_ms = Float.nan;
    serve_hit_rate = Float.nan;
    provenance = Provenance.capture () }

(* Scaling-probe decoration (bench scaling / ccgen scale): the fitted
   per-stage growth exponents and the ladder's scheduler figures.  A
   plain flow record leaves these at their neutral defaults, so ledger
   rows without a scaling run stay unsampled for the qor/scaling_* and
   qor/sched_* policies. *)
let with_scaling ?(stage_exponent = []) ?(sched_utilization = Float.nan)
    ?(sched_queue_depth_max = 0) ?(sched_caller_blocked_s = Float.nan) t =
  { t with
    stage_exponent;
    sched_utilization;
    sched_queue_depth_max;
    sched_caller_blocked_s }

(* Serve-bench decoration (bench serve): what the load generator saw.  A
   plain flow record keeps the neutral "not sampled" defaults, so ledger
   rows without a serve run stay unsampled for the qor/serve_* policies. *)
let with_serve ~requests ~throughput_rps ~p50_ms ~p95_ms ~hit_rate t =
  { t with
    serve_requests = requests;
    serve_throughput_rps = throughput_rps;
    serve_p50_ms = p50_ms;
    serve_p95_ms = p95_ms;
    serve_hit_rate = hit_rate }

let to_json t =
  Json.Obj
    [ ("schema_version", Json.Num (float_of_int t.schema_version));
      ("label", Json.Str t.label);
      ("style", Json.Str t.style);
      ("bits", Json.Num (float_of_int t.bits));
      ("tech_name", Json.Str t.tech_name);
      ("tech_hash", Json.Str t.tech_hash);
      ("repeat", Json.Num (float_of_int t.repeat));
      ("jobs", Json.Num (float_of_int t.jobs));
      ("par_speedup", Json.Num t.par_speedup);
      ( "stage_s",
        Json.Obj (List.map (fun (n, s) -> (n, Json.Num s)) t.stage_s) );
      ("place_route_s", Json.Num t.place_route_s);
      ( "stage_alloc_mb",
        Json.Obj (List.map (fun (n, s) -> (n, Json.Num s)) t.stage_alloc_mb) );
      ("alloc_mb_total", Json.Num t.alloc_mb_total);
      ("peak_heap_mb", Json.Num t.peak_heap_mb);
      ("major_collections", Json.Num (float_of_int t.major_collections));
      ("f3db_mhz", Json.Num t.f3db_mhz);
      ("max_inl_lsb", Json.Num t.max_inl_lsb);
      ("max_dnl_lsb", Json.Num t.max_dnl_lsb);
      ("tau_fs", Json.Num t.tau_fs);
      ("critical_bit", Json.Num (float_of_int t.critical_bit));
      ("via_cuts", Json.Num (float_of_int t.via_cuts));
      ("bends", Json.Num (float_of_int t.bends));
      ("wirelength_um", Json.Num t.wirelength_um);
      ("area_um2", Json.Num t.area_um2);
      ("verify_rules", Json.Arr (List.map (fun r -> Json.Str r) t.verify_rules));
      ("lvs_rules", Json.Arr (List.map (fun r -> Json.Str r) t.lvs_rules));
      ( "stage_exponent",
        Json.Obj (List.map (fun (n, s) -> (n, Json.Num s)) t.stage_exponent) );
      ("sched_utilization", Json.Num t.sched_utilization);
      ( "sched_queue_depth_max",
        Json.Num (float_of_int t.sched_queue_depth_max) );
      ("sched_caller_blocked_s", Json.Num t.sched_caller_blocked_s);
      ("serve_requests", Json.Num (float_of_int t.serve_requests));
      ("serve_throughput_rps", Json.Num t.serve_throughput_rps);
      ("serve_p50_ms", Json.Num t.serve_p50_ms);
      ("serve_p95_ms", Json.Num t.serve_p95_ms);
      ("serve_hit_rate", Json.Num t.serve_hit_rate);
      ("provenance", Provenance.to_json t.provenance) ]

let of_json j =
  match j with
  | Json.Obj _ ->
    let num name d =
      match Option.bind (Json.member name j) Json.to_float with
      | Some v -> v
      | None -> d
    in
    let int name d =
      let v = num name (float_of_int d) in
      if Float.is_finite v then int_of_float v else d
    in
    let str name d =
      match Option.bind (Json.member name j) Json.to_str with
      | Some v -> v
      | None -> d
    in
    let strs name =
      match Option.bind (Json.member name j) Json.to_list with
      | Some l -> List.filter_map Json.to_str l
      | None -> []
    in
    let stage_table name =
      match Json.member name j with
      | Some (Json.Obj fields) ->
        List.filter_map
          (fun (n, v) -> Option.map (fun s -> (n, s)) (Json.to_float v))
          fields
      | Some _ | None -> []
    in
    let stage_s = stage_table "stage_s" in
    let style = str "style" "" in
    let bits = int "bits" 0 in
    Ok
      { schema_version = int "schema_version" 0;
        label = str "label" (label ~style ~bits);
        style;
        bits;
        tech_name = str "tech_name" "";
        tech_hash = str "tech_hash" "";
        repeat = max 1 (int "repeat" 1);
        jobs = max 1 (int "jobs" 1);
        par_speedup = num "par_speedup" Float.nan;
        stage_s;
        place_route_s = num "place_route_s" Float.nan;
        stage_alloc_mb = stage_table "stage_alloc_mb";
        alloc_mb_total = num "alloc_mb_total" Float.nan;
        peak_heap_mb = num "peak_heap_mb" Float.nan;
        major_collections = int "major_collections" 0;
        f3db_mhz = num "f3db_mhz" Float.nan;
        max_inl_lsb = num "max_inl_lsb" Float.nan;
        max_dnl_lsb = num "max_dnl_lsb" Float.nan;
        tau_fs = num "tau_fs" Float.nan;
        critical_bit = int "critical_bit" (-1);
        via_cuts = int "via_cuts" 0;
        bends = int "bends" 0;
        wirelength_um = num "wirelength_um" Float.nan;
        area_um2 = num "area_um2" Float.nan;
        verify_rules = List.sort_uniq String.compare (strs "verify_rules");
        lvs_rules = List.sort_uniq String.compare (strs "lvs_rules");
        stage_exponent = stage_table "stage_exponent";
        sched_utilization = num "sched_utilization" Float.nan;
        sched_queue_depth_max = int "sched_queue_depth_max" 0;
        sched_caller_blocked_s = num "sched_caller_blocked_s" Float.nan;
        serve_requests = int "serve_requests" 0;
        serve_throughput_rps = num "serve_throughput_rps" Float.nan;
        serve_p50_ms = num "serve_p50_ms" Float.nan;
        serve_p95_ms = num "serve_p95_ms" Float.nan;
        serve_hit_rate = num "serve_hit_rate" Float.nan;
        provenance =
          (match Json.member "provenance" j with
           | Some p -> Provenance.of_json p
           | None -> Provenance.of_json Json.Null) }
  | _ -> Error "QoR record: expected a JSON object"
