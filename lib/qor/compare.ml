module Json = Telemetry.Json

type finding = {
  policy : Policy.t;
  label : string;
  verdict : Policy.verdict;
  detail : string;
}

type t = {
  findings : finding list;
  warnings : string list;
}

let coverage_policy =
  { Policy.id = "qor/coverage";
    metric = "baseline coverage";
    unit_ = "1";
    kind = Policy.Exact_set;
    sense = Policy.Neither;
    severity = Verify.Rule.Error }

(* Pull the observation a policy judges out of a record.  The mapping is
   the other half of the Policy.catalogue contract. *)
let observe (p : Policy.t) (r : Record.t) =
  match p.Policy.id with
  | "qor/f3db_mhz" -> Some (Policy.Scalar r.Record.f3db_mhz)
  | "qor/max_inl_lsb" -> Some (Policy.Scalar r.Record.max_inl_lsb)
  | "qor/max_dnl_lsb" -> Some (Policy.Scalar r.Record.max_dnl_lsb)
  | "qor/via_cuts" -> Some (Policy.Count r.Record.via_cuts)
  | "qor/bends" -> Some (Policy.Count r.Record.bends)
  | "qor/wirelength_um" -> Some (Policy.Scalar r.Record.wirelength_um)
  | "qor/area_um2" -> Some (Policy.Scalar r.Record.area_um2)
  | "qor/place_route_s" -> Some (Policy.Scalar r.Record.place_route_s)
  (* The memory metrics exist only in records captured with
     Telemetry.Memory sampling on; a record without them (alloc = nan)
     observes None, so mixed old/new comparisons skip the metric instead
     of failing Incomparable. *)
  | "qor/alloc_mb_total" ->
    if Float.is_nan r.Record.alloc_mb_total then None
    else Some (Policy.Scalar r.Record.alloc_mb_total)
  | "qor/peak_heap_mb" ->
    if Float.is_nan r.Record.peak_heap_mb then None
    else Some (Policy.Scalar r.Record.peak_heap_mb)
  | "qor/major_collections" ->
    if Float.is_nan r.Record.alloc_mb_total then None
    else Some (Policy.Scalar (float_of_int r.Record.major_collections))
  (* Likewise, the scaling/scheduler metrics are sampled only by records
     the scaling probe decorated (Record.with_scaling); plain flow rows
     observe None so the comparison skips them. *)
  | "qor/scaling_exponent" ->
    let finite =
      List.filter (fun (_, e) -> Float.is_finite e) r.Record.stage_exponent
    in
    (match finite with
     | [] -> None
     | (_, e0) :: rest ->
       Some
         (Policy.Scalar
            (List.fold_left (fun acc (_, e) -> Float.max acc e) e0 rest)))
  | "qor/sched_utilization" ->
    if Float.is_nan r.Record.sched_utilization then None
    else Some (Policy.Scalar r.Record.sched_utilization)
  | "qor/sched_caller_blocked_s" ->
    if Float.is_nan r.Record.sched_caller_blocked_s then None
    else Some (Policy.Scalar r.Record.sched_caller_blocked_s)
  | "qor/serve_throughput_rps" ->
    if Float.is_nan r.Record.serve_throughput_rps then None
    else Some (Policy.Scalar r.Record.serve_throughput_rps)
  | "qor/serve_p95_ms" ->
    if Float.is_nan r.Record.serve_p95_ms then None
    else Some (Policy.Scalar r.Record.serve_p95_ms)
  | "qor/serve_hit_rate" ->
    if Float.is_nan r.Record.serve_hit_rate then None
    else Some (Policy.Scalar r.Record.serve_hit_rate)
  | "qor/verify_rules" -> Some (Policy.Set r.Record.verify_rules)
  | "qor/lvs_rules" -> Some (Policy.Set r.Record.lvs_rules)
  | "qor/tech_hash" -> Some (Policy.Set [ r.Record.tech_hash ])
  | _ -> None

let note_verdict v =
  if Telemetry.Metrics.enabled () then
    Telemetry.Metrics.incr ~label:(Policy.verdict_name v) "qor/verdicts_total"

let compare_records ~(baseline : Record.t) ~(current : Record.t) =
  if Telemetry.Metrics.enabled () then
    Telemetry.Metrics.incr "qor/diffs_total";
  let repeat = max 1 (min baseline.Record.repeat current.Record.repeat) in
  List.filter_map
    (fun (p : Policy.t) ->
       match observe p baseline, observe p current with
       | Some b, Some c ->
         let verdict, detail = Policy.judge p ~repeat ~baseline:b ~current:c in
         note_verdict verdict;
         Some { policy = p; label = current.Record.label; verdict; detail }
       | None, _ | _, None -> None)
    Policy.catalogue

let verdict_rank = function
  | Policy.Regressed -> 0
  | Policy.Incomparable -> 1
  | Policy.Improved -> 2
  | Policy.Unchanged -> 3

let sort_findings fs =
  List.sort
    (fun a b ->
       match Int.compare (verdict_rank a.verdict) (verdict_rank b.verdict) with
       | 0 ->
         (match
            Verify.Rule.compare_severity a.policy.Policy.severity
              b.policy.Policy.severity
          with
          | 0 ->
            (match String.compare a.policy.Policy.id b.policy.Policy.id with
             | 0 -> String.compare a.label b.label
             | c -> c)
          | c -> c)
       | c -> c)
    fs

let diff ~baseline ~current =
  let find label records =
    List.find_opt (fun (r : Record.t) -> String.equal r.Record.label label)
      records
  in
  let findings, warnings =
    List.fold_left
      (fun (fs, ws) (b : Record.t) ->
         match find b.Record.label current with
         | Some c ->
           let skew =
             if b.Record.schema_version <> c.Record.schema_version then
               [ Printf.sprintf
                   "%s: schema version skew (baseline v%d, current v%d); \
                    missing metrics read as incomparable"
                   b.Record.label b.Record.schema_version
                   c.Record.schema_version ]
             else []
           in
           (compare_records ~baseline:b ~current:c @ fs, skew @ ws)
         | None ->
           let f =
             { policy = coverage_policy;
               label = b.Record.label;
               verdict = Policy.Incomparable;
               detail =
                 "configuration present in the baseline has no current \
                  record" }
           in
           note_verdict f.verdict;
           (f :: fs, ws))
      ([], []) baseline
  in
  let extra =
    List.filter_map
      (fun (c : Record.t) ->
         if find c.Record.label baseline = None then
           Some
             (Printf.sprintf "%s: no baseline record (new configuration?)"
                c.Record.label)
         else None)
      current
  in
  { findings = sort_findings findings; warnings = List.rev warnings @ extra }

let disqualifies ?(werror = false) f =
  (match f.verdict with
   | Policy.Regressed | Policy.Incomparable -> true
   | Policy.Improved | Policy.Unchanged -> false)
  && (werror
      || match f.policy.Policy.severity with
         | Verify.Rule.Error -> true
         | Verify.Rule.Warning | Verify.Rule.Info -> false)

let failing ?werror t = List.filter (disqualifies ?werror) t.findings

let gate ?werror t =
  match failing ?werror t with [] -> Ok () | fs -> Error fs

let summary_counts t =
  List.fold_left
    (fun (r, i, im, u) f ->
       match f.verdict with
       | Policy.Regressed -> (r + 1, i, im, u)
       | Policy.Incomparable -> (r, i + 1, im, u)
       | Policy.Improved -> (r, i, im + 1, u)
       | Policy.Unchanged -> (r, i, im, u + 1))
    (0, 0, 0, 0) t.findings

let summary_line t =
  let r, i, im, _ = summary_counts t in
  if r = 0 && i = 0 && im = 0 then "clean"
  else
    String.concat ", "
      (List.filter_map
         (fun (n, what) ->
            if n = 0 then None else Some (Printf.sprintf "%d %s" n what))
         [ (r, "regressed"); (i, "incomparable"); (im, "improved") ])

let text t =
  let b = Buffer.create 1024 in
  List.iter
    (fun f ->
       if f.verdict <> Policy.Unchanged then
         Buffer.add_string b
           (Printf.sprintf "%s[%s] %s: %s\n"
              (Policy.verdict_name f.verdict)
              f.policy.Policy.id f.label f.detail))
    t.findings;
  List.iter
    (fun w -> Buffer.add_string b (Printf.sprintf "note: %s\n" w))
    t.warnings;
  Buffer.add_string b (summary_line t);
  Buffer.add_char b '\n';
  Buffer.contents b

let to_json t =
  let r, i, im, u = summary_counts t in
  Json.Obj
    [ ("version", Json.Num 1.);
      ( "summary",
        Json.Obj
          [ ("regressed", Json.Num (float_of_int r));
            ("incomparable", Json.Num (float_of_int i));
            ("improved", Json.Num (float_of_int im));
            ("unchanged", Json.Num (float_of_int u));
            ("total", Json.Num (float_of_int (List.length t.findings))) ] );
      ( "findings",
        Json.Arr
          (List.map
             (fun f ->
                Json.Obj
                  [ ("id", Json.Str f.policy.Policy.id);
                    ("label", Json.Str f.label);
                    ("metric", Json.Str f.policy.Policy.metric);
                    ( "severity",
                      Json.Str
                        (Verify.Rule.severity_name f.policy.Policy.severity) );
                    ("verdict", Json.Str (Policy.verdict_name f.verdict));
                    ("detail", Json.Str f.detail) ])
             t.findings) );
      ("warnings", Json.Arr (List.map (fun w -> Json.Str w) t.warnings)) ]
