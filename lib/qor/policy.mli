(** Per-metric tolerance policies: what counts as a regression.

    Three families, matching how each metric behaves:

    - {b Rel}: noisy continuous metrics (wall-clock times, and loosely
      area/wirelength).  A change is judged {e relative} to the baseline,
      with a noise floor: values whose magnitudes both sit at or under
      the floor compare equal, and the relative denominator never drops
      below the floor, so microscopic baselines cannot turn dust into
      percentages.  Time floors are {e repeat-aware}: medianing [r] runs
      shrinks the floor by [sqrt r].
    - {b Abs}: deterministic analytic metrics with a meaningful unit
      (INL/DNL in LSB) — an absolute tolerance in that unit.
    - {b Exact}: integers and id sets (via cuts, fired rule ids).  Any
      drift is a verdict; the baseline must be regenerated to bless an
      intentional change.

    Thresholds are {e inclusive}: a change of exactly the tolerance is
    [Unchanged] — regression means strictly beyond the stated tolerance.
    A NaN on either side (e.g. a field missing from an old-schema
    record) is [Incomparable], never silently equal. *)

(** Which direction is good.  [Neither] means any drift is bad. *)
type sense =
  | Higher_better   (** e.g. f3dB *)
  | Lower_better    (** e.g. runtime, |INL| *)
  | Neither

type kind =
  | Rel of {
      tol : float;           (** allowed fractional change, e.g. 0.02 *)
      floor : float;         (** noise floor in the metric's unit *)
      repeat_aware : bool;   (** divide [floor] by [sqrt repeat] *)
    }
  | Abs of { tol : float }   (** allowed absolute change *)
  | Exact_count
  | Exact_set

type t = {
  id : string;               (** verdict id, e.g. ["qor/f3db_mhz"] *)
  metric : string;           (** human name, e.g. ["f3dB"] *)
  unit_ : string;
  kind : kind;
  sense : sense;
  severity : Verify.Rule.severity;  (** [Error] fails the gate outright;
                                        [Warning] fails under [--werror] *)
}

(** What a policy is judged over. *)
type observation =
  | Scalar of float
  | Count of int
  | Set of string list       (** compared as a sorted set *)

type verdict =
  | Improved
  | Unchanged
  | Regressed
  | Incomparable             (** NaN, or observation kinds disagree *)

val verdict_name : verdict -> string

(** [judge policy ~repeat ~baseline ~current] applies the policy and
    explains itself: the returned string states the values and the
    threshold that decided.  [repeat] feeds repeat-aware floors (use the
    smaller of the two records' repeat counts). *)
val judge :
  t -> repeat:int -> baseline:observation -> current:observation ->
  verdict * string

(** The committed policy catalogue — one entry per compared metric, ids
    under [qor/].  Documented as a table in docs/QOR.md; keep in sync. *)
val catalogue : t list

val find : string -> t option
