module Json = Telemetry.Json

type delay_element = {
  de_label : string;
  de_kind : string;
  de_layer : string;
  de_r_ohm : float;
  de_c_ff : float;
  de_delay_fs : float;
  de_share : float;
}

type inl_element = {
  ie_name : string;
  ie_on : bool;
  ie_systematic_lsb : float;
  ie_random_lsb : float;
  ie_total_lsb : float;
  ie_share : float;
}

type t = {
  style : string;
  bits : int;
  critical_bit : int;
  worst_cell : string;
  delay_total_fs : float;
  tau_fs : float;
  f3db_mhz : float;
  delay_elements : delay_element list;
  inl_code : int;
  inl_lsb : float;
  max_inl_lsb : float;
  inl_elements : inl_element list;
}

let of_result (r : Ccdac.Flow.result) =
  Telemetry.Span.with_ ~name:"qor.explain"
    ~attrs:
      [ ("style", Telemetry.Span.Str (Ccplace.Style.name r.Ccdac.Flow.style));
        ("bits", Telemetry.Span.Int r.Ccdac.Flow.bits) ]
  @@ fun () ->
  let net =
    Extract.Netbuild.build r.Ccdac.Flow.layout ~cap:r.Ccdac.Flow.critical_bit
  in
  let worst_cell, delay_total_fs, parts = Extract.Netbuild.attribution net in
  let share total x = if Float.equal total 0. then 0. else x /. total in
  let delay_elements =
    List.map
      (fun (c : Extract.Netbuild.contribution) ->
         { de_label = c.Extract.Netbuild.nb_label;
           de_kind =
             Extract.Netbuild.part_kind_name c.Extract.Netbuild.nb_kind;
           de_layer = c.Extract.Netbuild.nb_layer;
           de_r_ohm = c.Extract.Netbuild.nb_r_ohm;
           de_c_ff = c.Extract.Netbuild.nb_c_down_ff;
           de_delay_fs = c.Extract.Netbuild.nb_delay_fs;
           de_share = share delay_total_fs c.Extract.Netbuild.nb_delay_fs })
      parts
  in
  let attr =
    Dacmodel.Nonlinearity.attribute r.Ccdac.Flow.tech
      ~top_parasitic:
        r.Ccdac.Flow.parasitics.Extract.Parasitics.total_top_cap
      r.Ccdac.Flow.placement
  in
  let inl_lsb = attr.Dacmodel.Nonlinearity.inl_lsb in
  let inl_elements =
    List.map
      (fun (s : Dacmodel.Nonlinearity.inl_share) ->
         { ie_name = Printf.sprintf "C_%d" s.Dacmodel.Nonlinearity.cap;
           ie_on = s.Dacmodel.Nonlinearity.on;
           ie_systematic_lsb = s.Dacmodel.Nonlinearity.systematic_lsb;
           ie_random_lsb = s.Dacmodel.Nonlinearity.random_lsb;
           ie_total_lsb = s.Dacmodel.Nonlinearity.total_lsb;
           ie_share = share inl_lsb s.Dacmodel.Nonlinearity.total_lsb })
      attr.Dacmodel.Nonlinearity.shares
    @ [ { ie_name = "top-plate parasitic";
          ie_on = false;
          ie_systematic_lsb = attr.Dacmodel.Nonlinearity.parasitic_lsb;
          ie_random_lsb = 0.;
          ie_total_lsb = attr.Dacmodel.Nonlinearity.parasitic_lsb;
          ie_share = share inl_lsb attr.Dacmodel.Nonlinearity.parasitic_lsb }
      ]
  in
  if Telemetry.Metrics.enabled () then
    Telemetry.Metrics.set "qor/explain_elements"
      (float_of_int (List.length delay_elements + List.length inl_elements));
  { style = Ccplace.Style.name r.Ccdac.Flow.style;
    bits = r.Ccdac.Flow.bits;
    critical_bit = r.Ccdac.Flow.critical_bit;
    worst_cell =
      Printf.sprintf "cell(%d,%d)" worst_cell.Ccgrid.Cell.row
        worst_cell.Ccgrid.Cell.col;
    delay_total_fs;
    tau_fs = r.Ccdac.Flow.tau_fs;
    f3db_mhz = r.Ccdac.Flow.f3db_mhz;
    delay_elements;
    inl_code = attr.Dacmodel.Nonlinearity.code;
    inl_lsb;
    max_inl_lsb = r.Ccdac.Flow.max_inl;
    inl_elements }

let text ?(top = 10) t =
  let b = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "%s %d-bit — per-element attribution\n\n" t.style t.bits;
  add "worst-bit Elmore delay: C_%d, driver -> %s, %.1f fs (tau %.1f fs, \
       f3dB %.0f MHz)\n"
    t.critical_bit t.worst_cell t.delay_total_fs t.tau_fs t.f3db_mhz;
  let ranked =
    List.stable_sort
      (fun a b -> Float.compare (Float.abs b.de_share) (Float.abs a.de_share))
      t.delay_elements
  in
  let shown = List.filteri (fun i _ -> i < top) ranked in
  add "  %-28s %-5s %-5s %10s %10s %10s %7s\n" "element" "kind" "layer"
    "R (ohm)" "C (fF)" "delay (fs)" "share";
  List.iter
    (fun e ->
       add "  %-28s %-5s %-5s %10.3f %10.3f %10.3f %6.1f%%\n" e.de_label
         e.de_kind e.de_layer e.de_r_ohm e.de_c_ff e.de_delay_fs
         (100. *. e.de_share))
    shown;
  let rest = List.length ranked - List.length shown in
  if rest > 0 then begin
    let rest_fs =
      List.fold_left
        (fun acc e -> acc +. e.de_delay_fs)
        0.
        (List.filteri (fun i _ -> i >= top) ranked)
    in
    add "  ... %d more elements, %.3f fs\n" rest rest_fs
  end;
  add "\nworst-code INL: code %d, %+.4f LSB (run max |INL| %.4f LSB)\n"
    t.inl_code t.inl_lsb t.max_inl_lsb;
  add "  %-22s %-3s %12s %12s %12s %7s\n" "element" "on" "sys (LSB)"
    "rand (LSB)" "total (LSB)" "share";
  List.iter
    (fun e ->
       add "  %-22s %-3s %+12.5f %+12.5f %+12.5f %6.1f%%\n" e.ie_name
         (if e.ie_on then "on" else "-")
         e.ie_systematic_lsb e.ie_random_lsb e.ie_total_lsb
         (100. *. e.ie_share))
    (List.stable_sort
       (fun a b ->
          Float.compare (Float.abs b.ie_total_lsb) (Float.abs a.ie_total_lsb))
       t.inl_elements);
  Buffer.contents b

let to_json t =
  Json.Obj
    [ ("version", Json.Num 1.);
      ("style", Json.Str t.style);
      ("bits", Json.Num (float_of_int t.bits));
      ("critical_bit", Json.Num (float_of_int t.critical_bit));
      ("worst_cell", Json.Str t.worst_cell);
      ("delay_total_fs", Json.Num t.delay_total_fs);
      ("tau_fs", Json.Num t.tau_fs);
      ("f3db_mhz", Json.Num t.f3db_mhz);
      ( "delay_elements",
        Json.Arr
          (List.map
             (fun e ->
                Json.Obj
                  [ ("label", Json.Str e.de_label);
                    ("kind", Json.Str e.de_kind);
                    ("layer", Json.Str e.de_layer);
                    ("r_ohm", Json.Num e.de_r_ohm);
                    ("c_ff", Json.Num e.de_c_ff);
                    ("delay_fs", Json.Num e.de_delay_fs);
                    ("share", Json.Num e.de_share) ])
             t.delay_elements) );
      ("inl_code", Json.Num (float_of_int t.inl_code));
      ("inl_lsb", Json.Num t.inl_lsb);
      ("max_inl_lsb", Json.Num t.max_inl_lsb);
      ( "inl_elements",
        Json.Arr
          (List.map
             (fun e ->
                Json.Obj
                  [ ("name", Json.Str e.ie_name);
                    ("on", Json.Bool e.ie_on);
                    ("systematic_lsb", Json.Num e.ie_systematic_lsb);
                    ("random_lsb", Json.Num e.ie_random_lsb);
                    ("total_lsb", Json.Num e.ie_total_lsb);
                    ("share", Json.Num e.ie_share) ])
             t.inl_elements) ) ]
