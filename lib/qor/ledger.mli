(** The append-only run ledger: one JSON object per line (JSONL), one
    line per recorded flow run.

    Appending never rewrites history — the file is opened in append mode
    and each append holds an advisory whole-file lock ([lockf]) for the
    duration of its single-line write, so concurrent recorders — a serve
    daemon, a parallel [make bench], several processes sharing one
    ledger — interleave whole lines, never fragments.  Loading is
    tolerant: lines that fail to parse are skipped and reported, not
    fatal, because a ledger is a log and a log survives partial
    corruption. *)

(** [append ~path record] appends one line, creating the file (0644) if
    needed, serialised against concurrent appenders by an advisory file
    lock.  Raises [Sys_error] when the path cannot be written. *)
val append : path:string -> Record.t -> unit

(** [load ~path] is [(records, complaints)]: every line that parsed, in
    file order, plus one human-readable complaint per skipped line.
    Raises [Sys_error] when the file cannot be read. *)
val load : path:string -> Record.t list * string list

(** [latest_by_label records] keeps the last record of each label, in
    first-seen label order — "the current state of the ledger". *)
val latest_by_label : Record.t list -> Record.t list
