module Json = Telemetry.Json

type t = {
  id : string option;
  style : Ccplace.Style.t;
  bits : int;
  seed : int;
  trials : int;
  tech : Tech.Process.t;
}

type error = {
  code : string;
  detail : string;
  rules : string list;
}

let invalid fmt = Printf.ksprintf (fun detail -> Error { code = "invalid-request"; detail; rules = [] }) fmt

let ( let* ) = Result.bind

let known_fields =
  [ "id"; "style"; "bits"; "granularity"; "core_bits"; "seed"; "trials";
    "tech"; "overrides" ]

let override_keys =
  [ "via_resistance"; "plate_resistance"; "wire_pitch"; "cell_width";
    "cell_height"; "cell_spacing"; "unit_cap"; "top_substrate_cap";
    "gradient_ppm"; "gradient_theta_deg"; "rho_u"; "corr_length";
    "mismatch_coeff" ]

let apply_override tech key v =
  let open Tech.Process in
  match key with
  | "via_resistance" -> Ok { tech with via_resistance = v }
  | "plate_resistance" -> Ok { tech with plate_resistance = v }
  | "wire_pitch" -> Ok { tech with wire_pitch = v }
  | "cell_width" -> Ok { tech with cell_width = v }
  | "cell_height" -> Ok { tech with cell_height = v }
  | "cell_spacing" -> Ok { tech with cell_spacing = v }
  | "unit_cap" -> Ok { tech with unit_cap = v }
  | "top_substrate_cap" -> Ok { tech with top_substrate_cap = v }
  | "gradient_ppm" -> Ok { tech with gradient_ppm = v }
  | "gradient_theta_deg" -> Ok { tech with gradient_theta = v *. Float.pi /. 180. }
  | "rho_u" -> Ok { tech with rho_u = v }
  | "corr_length" -> Ok { tech with corr_length = v }
  | "mismatch_coeff" -> Ok { tech with mismatch_coeff = v }
  | other -> invalid "overrides: unknown key %S" other

(* An optional integer field: absent -> [default]; present -> must be an
   integral finite number within int range. *)
let int_field obj key ~default =
  match Json.member key obj with
  | None | Some Json.Null -> Ok default
  | Some j -> begin
      match Json.to_float j with
      | Some v when Float.is_integer v && Float.abs v < 1e9 ->
        Ok (int_of_float v)
      | Some _ -> invalid "%s: not an integer" key
      | None -> invalid "%s: expected a number" key
    end

let str_field obj key ~default =
  match Json.member key obj with
  | None | Some Json.Null -> Ok default
  | Some j -> begin
      match Json.to_str j with
      | Some s -> Ok s
      | None -> invalid "%s: expected a string" key
    end

let parse_style obj ~bits =
  let* name = str_field obj "style" ~default:"spiral" in
  let has key = match Json.member key obj with
    | None | Some Json.Null -> false
    | Some _ -> true
  in
  let bc_only key =
    if has key then invalid "%s: only valid for style \"bc\"" key else Ok ()
  in
  match name with
  | "spiral" | "chessboard" | "rowwise" ->
    let* () = bc_only "granularity" in
    let* () = bc_only "core_bits" in
    Ok
      (match name with
       | "spiral" -> Ccplace.Style.Spiral
       | "chessboard" -> Ccplace.Style.Chessboard
       | _ -> Ccplace.Style.Rowwise)
  | "bc" ->
    let* granularity = int_field obj "granularity" ~default:2 in
    let* core_bits =
      int_field obj "core_bits"
        ~default:(Ccplace.Block_chess.default_core_bits ~bits)
    in
    if granularity < 1 then invalid "granularity: must be >= 1"
    else if core_bits < 1 then invalid "core_bits: must be >= 1"
    else Ok (Ccplace.Style.Block_chess { core_bits; granularity })
  | other ->
    invalid "style: unknown style %S (spiral|chessboard|rowwise|bc)" other

let parse_tech obj =
  let* base = str_field obj "tech" ~default:"finfet" in
  let* tech =
    match base with
    | "finfet" -> Ok Tech.Process.finfet_12nm
    | "bulk" -> Ok Tech.Process.bulk_legacy
    | other -> invalid "tech: unknown preset %S (finfet|bulk)" other
  in
  match Json.member "overrides" obj with
  | None | Some Json.Null -> Ok tech
  | Some (Json.Obj fields) ->
    List.fold_left
      (fun acc (key, j) ->
         let* tech = acc in
         match Json.to_float j with
         | Some v when Float.is_finite v -> apply_override tech key v
         | Some _ -> invalid "overrides.%s: not finite" key
         | None -> invalid "overrides.%s: expected a number" key)
      (Ok tech) fields
  | Some _ -> invalid "overrides: expected an object"

let verify_gate ~bits ~style ~tech =
  let diags =
    Verify.Engine.check_tech tech @ Verify.Engine.check_style ~bits style
  in
  match Verify.Engine.gate diags with
  | Ok () -> Ok ()
  | Error diags ->
    let errors = Verify.Diagnostic.errors diags in
    Error
      { code = "verify-rejected";
        detail =
          Printf.sprintf "%d verify error%s" (List.length errors)
            (if List.length errors = 1 then "" else "s");
        rules = Verify.Diagnostic.rule_ids errors }

let of_json json =
  match json with
  | Json.Obj fields ->
    let* () =
      List.fold_left
        (fun acc (key, _) ->
           let* () = acc in
           if List.mem key known_fields then Ok ()
           else invalid "unknown field %S" key)
        (Ok ()) fields
    in
    let* id =
      match Json.member "id" json with
      | None | Some Json.Null -> Ok None
      | Some j -> begin
          match Json.to_str j with
          | Some s -> Ok (Some s)
          | None -> invalid "id: expected a string"
        end
    in
    let* bits = int_field json "bits" ~default:8 in
    let* () =
      if bits < 2 || bits > Ccgrid.Weights.max_bits then
        invalid "bits: out of range [2, %d]" Ccgrid.Weights.max_bits
      else Ok ()
    in
    let* style = parse_style json ~bits in
    let* seed = int_field json "seed" ~default:1 in
    let* () = if seed < 0 then invalid "seed: must be >= 0" else Ok () in
    let* trials = int_field json "trials" ~default:0 in
    let* () =
      if trials < 0 then invalid "trials: must be >= 0"
      else if trials > 1_000_000 then invalid "trials: capped at 1000000"
      else Ok ()
    in
    let* tech = parse_tech json in
    let* () = verify_gate ~bits ~style ~tech in
    Ok { id; style; bits; seed; trials; tech }
  | _ -> invalid "request must be a JSON object"

let of_line line =
  match Json.parse line with
  | Ok json -> of_json json
  | Error msg -> Error { code = "malformed"; detail = msg; rules = [] }

let to_json ?id ?granularity ?core_bits ?seed ?trials ?tech ?overrides ~style
    ~bits () =
  let opt key f = function None -> [] | Some v -> [ (key, f v) ] in
  let num i = Json.Num (float_of_int i) in
  Json.Obj
    (opt "id" (fun s -> Json.Str s) id
     @ [ ("style", Json.Str style); ("bits", num bits) ]
     @ opt "granularity" num granularity
     @ opt "core_bits" num core_bits
     @ opt "seed" num seed
     @ opt "trials" num trials
     @ opt "tech" (fun s -> Json.Str s) tech
     @ opt "overrides"
         (fun kvs -> Json.Obj (List.map (fun (k, v) -> (k, Json.Num v)) kvs))
         overrides)

let error_to_json e =
  Json.Obj
    ([ ("code", Json.Str e.code); ("detail", Json.Str e.detail) ]
     @ if e.rules = [] then []
       else [ ("rules", Json.Arr (List.map (fun r -> Json.Str r) e.rules)) ])
