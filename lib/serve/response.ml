module Json = Telemetry.Json

(* Envelopes are composed by string concatenation around the payload
   bytes, never by re-encoding a parsed tree: a cache hit must ship the
   byte-identical payload the first computation produced, and splicing
   is what guarantees no re-serialisation can perturb it. *)

let id_part = function
  | None -> ""
  | Some id -> Printf.sprintf ",\"id\":%s" (Json.escape id)

let num v = Json.to_string (Json.Num v)

let ok ?id ~server ~cached ~elapsed_ms ~payload () =
  Printf.sprintf "{\"status\":\"ok\"%s,\"server\":%s,\"cached\":%b,\"elapsed_ms\":%s,\"result\":%s}"
    (id_part id) (Json.escape server) cached (num elapsed_ms) payload

let error ?id ~server (e : Request.error) () =
  Printf.sprintf "{\"status\":\"error\"%s,\"server\":%s,\"error\":%s}"
    (id_part id) (Json.escape server)
    (Json.to_string (Request.error_to_json e))

let busy ?id ~server ~retry_after_s () =
  Printf.sprintf
    "{\"status\":\"busy\"%s,\"server\":%s,\"retry_after_s\":%s,\"error\":%s}"
    (id_part id) (Json.escape server) (num retry_after_s)
    (Json.to_string
       (Request.error_to_json
          { Request.code = "queue-full";
            detail = "request queue is full; retry after the given delay";
            rules = [] }))
