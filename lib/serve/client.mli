(** Minimal line-protocol client for the placement service, shared by
    [ccgen request] and the {!Loadgen} bench driver. *)

type t

(** [connect addr].  Raises [Unix.Unix_error] when nothing listens. *)
val connect : Daemon.addr -> t

(** [send t line] writes one request line (newline appended, flushed). *)
val send : t -> string -> unit

(** [recv t] is the next response line, [None] at EOF.  Responses arrive
    in request order (the daemon answers each connection FIFO). *)
val recv : t -> string option

(** [request t line] is {!send} then {!recv}. *)
val request : t -> string -> string option

val close : t -> unit
