type result = {
  requests : int;
  ok : int;
  errors : int;
  busy : int;
  cache_hits : int;
  hit_rate : float;
  throughput_rps : float;
  p50_ms : float;
  p95_ms : float;
  elapsed_s : float;
}

(* The daemon composes envelopes itself with a fixed field order
   (Response), so classifying by prefix/substring is exact — and cheap
   enough to disappear next to 10k socket round-trips. *)
let classify line =
  if String.length line >= 15 && String.equal (String.sub line 0 15) "{\"status\":\"ok\"," then begin
    let cached =
      let marker = "\"cached\":true" in
      let n = String.length line and m = String.length marker in
      let rec scan i =
        if i + m > n then false
        else if String.equal (String.sub line i m) marker then true
        else scan (i + 1)
      in
      scan 0
    in
    `Ok cached
  end
  else if String.length line >= 16
          && String.equal (String.sub line 0 16) "{\"status\":\"busy\"" then `Busy
  else `Error

let zipf_picker ~zipf_s ~universe =
  let n = Array.length universe in
  let cum = Array.make n 0. in
  let total = ref 0. in
  Array.iteri
    (fun i _ ->
       total := !total +. (1. /. Float.pow (float_of_int (i + 1)) zipf_s);
       cum.(i) <- !total)
    universe;
  fun state ->
    let u = Random.State.float state !total in
    let rec find i = if i >= n - 1 || cum.(i) > u then i else find (i + 1) in
    universe.(find 0)

let run ?(seed = 1) ?(window = 64)
    ?(styles = [ "spiral"; "chessboard"; "rowwise"; "bc" ])
    ?(bits_choices = [ 4; 6; 8 ]) ?(zipf_s = 1.1) ~requests addr =
  let universe =
    Array.of_list
      (List.concat_map
         (fun style -> List.map (fun bits -> (style, bits)) bits_choices)
         styles)
  in
  let pick = zipf_picker ~zipf_s ~universe in
  let state = Random.State.make [| seed |] in
  let client = Client.connect addr in
  let latencies = Array.make (max 1 requests) 0. in
  let sent_at = Queue.create () in
  let ok = ref 0 and errors = ref 0 and busy = ref 0 in
  let cache_hits = ref 0 and received = ref 0 in
  let drain_one () =
    match Client.recv client with
    | None -> raise End_of_file
    | Some line ->
      let t_sent = Queue.pop sent_at in
      latencies.(!received) <-
        Telemetry.Clock.(to_s (since_ns t_sent)) *. 1000.;
      incr received;
      (match classify line with
       | `Ok cached ->
         incr ok;
         if cached then incr cache_hits
       | `Busy -> incr busy
       | `Error -> incr errors)
  in
  let t0 = Telemetry.Clock.now_ns () in
  for i = 0 to requests - 1 do
    let style, bits = pick state in
    let line =
      Telemetry.Json.to_string
        (Request.to_json ~id:(Printf.sprintf "r%d" i) ~seed ~trials:0 ~style
           ~bits ())
    in
    if Queue.length sent_at >= window then drain_one ();
    Queue.push (Telemetry.Clock.now_ns ()) sent_at;
    Client.send client line
  done;
  while not (Queue.is_empty sent_at) do
    drain_one ()
  done;
  let elapsed_s = Telemetry.Clock.since_s t0 in
  Client.close client;
  let measured = Array.sub latencies 0 !received in
  Array.sort Float.compare measured;
  { requests;
    ok = !ok;
    errors = !errors;
    busy = !busy;
    cache_hits = !cache_hits;
    hit_rate =
      (if !ok > 0 then float_of_int !cache_hits /. float_of_int !ok else 0.);
    throughput_rps =
      (if elapsed_s > 0. then float_of_int requests /. elapsed_s else 0.);
    p50_ms = Dacmodel.Montecarlo.percentile measured 0.50;
    p95_ms = Dacmodel.Montecarlo.percentile measured 0.95;
    elapsed_s }
