let changelog = "1.10.0"

let server () =
  let p = Qor.Provenance.capture () in
  let commit =
    match p.Qor.Provenance.git_commit with
    | Some c -> Printf.sprintf " commit=%s" (String.sub c 0 (min 8 (String.length c)))
    | None -> ""
  in
  Printf.sprintf "ccdac/%s host=%s%s" changelog p.Qor.Provenance.host commit
