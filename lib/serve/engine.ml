module Json = Telemetry.Json

type t = {
  pool : Par.Pool.t option;
  jobs_ : int;
  cache : Cache.t;
  server_ : string;
}

type outcome = {
  line : string;
  code : string option;
  cached : bool;
  payload : string option;
}

let create ?cache_dir ?(cache_capacity = 4096) ?jobs () =
  let jobs_ = Par.Jobs.resolve jobs in
  { pool = (if jobs_ > 1 then Some (Par.Pool.create ~jobs:jobs_) else None);
    jobs_;
    cache = Cache.create ?dir:cache_dir ~capacity:cache_capacity ();
    server_ = Version.server () }

let jobs t = t.jobs_

let server t = t.server_

let shutdown t =
  match t.pool with
  | Some pool -> Par.Pool.shutdown pool
  | None -> ()

let mc_json (mc : Dacmodel.Montecarlo.t) =
  Json.Obj
    [ ("trials", Json.Num (float_of_int mc.Dacmodel.Montecarlo.trials));
      ("mean_inl", Json.Num mc.Dacmodel.Montecarlo.mean_inl);
      ("mean_dnl", Json.Num mc.Dacmodel.Montecarlo.mean_dnl);
      ("p95_inl", Json.Num mc.Dacmodel.Montecarlo.p95_inl);
      ("p95_dnl", Json.Num mc.Dacmodel.Montecarlo.p95_dnl);
      ("max_inl", Json.Num mc.Dacmodel.Montecarlo.max_inl);
      ("max_dnl", Json.Num mc.Dacmodel.Montecarlo.max_dnl);
      ("yield", Json.Num mc.Dacmodel.Montecarlo.yield) ]

(* The payload is serialised once, here, and from then on only stored and
   spliced as bytes (Cache, Response) — the byte-identity contract. *)
let payload_of record mc =
  Json.to_string
    (Json.Obj
       (("record", Qor.Record.to_json record)
        :: (match mc with Some m -> [ ("mc", mc_json m) ] | None -> [])))

(* Flow runs inside a batch task use jobs = 1: concurrency comes from
   running the batch's requests side by side on the pool, and results
   stay bitwise-identical to a serial server. *)
let run_one (req : Request.t) =
  let attrs =
    [ ("style", Telemetry.Span.Str (Ccplace.Style.name req.Request.style));
      ("bits", Telemetry.Span.Int req.Request.bits);
      ("trials", Telemetry.Span.Int req.Request.trials) ]
    @ (match req.Request.id with
       | Some id -> [ ("request_id", Telemetry.Span.Str id) ]
       | None -> [])
  in
  Telemetry.Span.with_ ~name:"serve.request" ~attrs (fun () ->
      let r =
        Ccdac.Flow.run ~tech:req.Request.tech ~bits:req.Request.bits
          req.Request.style
      in
      let record = Qor.Record.of_result r in
      let mc =
        if req.Request.trials > 0 then
          Some
            (Dacmodel.Montecarlo.run req.Request.tech ~seed:req.Request.seed
               ~jobs:1 ~trials:req.Request.trials r.Ccdac.Flow.placement)
        else None
      in
      payload_of record mc)

(* Extract a best-effort correlation id so even invalid requests echo the
   caller's [id] back. *)
let id_of_line line =
  match Json.parse line with
  | Ok json -> begin
      match Json.member "id" json with
      | Some (Json.Str s) -> Some s
      | Some _ | None -> None
    end
  | Error _ -> None

type parsed =
  | Bad of Request.error * string option  (* error, echoed id *)
  | Hit of Request.t * string             (* cached payload *)
  | Miss of Request.t * string            (* cache key *)

let classify t line =
  match Request.of_line line with
  | Error e -> Bad (e, id_of_line line)
  | Ok req ->
    let key =
      Cache.key ~tech:req.Request.tech ~style:req.Request.style
        ~bits:req.Request.bits ~seed:req.Request.seed
        ~trials:req.Request.trials
    in
    (match Cache.find t.cache key with
     | Some payload -> Hit (req, payload)
     | None -> Miss (req, key))

let error_of_task (te : Par.Pool.task_error) =
  match te.Par.Pool.exn with
  | Verify.Engine.Rejected { diagnostics; _ } ->
    let errors = Verify.Diagnostic.errors diagnostics in
    { Request.code = "verify-rejected";
      detail =
        Printf.sprintf "%d verify error%s" (List.length errors)
          (if List.length errors = 1 then "" else "s");
      rules = Verify.Diagnostic.rule_ids errors }
  | exn ->
    { Request.code = "internal-error";
      detail = Printexc.to_string exn;
      rules = [] }

let handle_batch t lines =
  let t0 = Telemetry.Clock.now_ns () in
  let parsed = List.map (classify t) lines in
  let misses =
    List.filter_map (function Miss (req, _) -> Some req | _ -> None) parsed
  in
  List.iter
    (function
      | Bad (e, _) -> Telemetry.Metrics.incr ~label:e.Request.code "serve/rejected_total"
      | Hit _ ->
        Telemetry.Metrics.incr "serve/accepted_total";
        Telemetry.Metrics.incr "serve/cache_hits_total"
      | Miss _ ->
        Telemetry.Metrics.incr "serve/accepted_total";
        Telemetry.Metrics.incr "serve/cache_misses_total")
    parsed;
  Telemetry.Metrics.set "serve/in_flight" (float_of_int (List.length misses));
  let computed =
    match misses with
    | [] -> [||]
    | _ ->
      Array.of_list
        (match t.pool with
         | Some pool -> Par.Pool.map pool run_one misses
         | None -> Par.Pool.map_list ~jobs:1 run_one misses)
  in
  Telemetry.Metrics.set "serve/in_flight" 0.;
  let finish () =
    let elapsed_ms = Telemetry.Clock.(to_s (since_ns t0)) *. 1000. in
    Telemetry.Metrics.observe "serve/request_us"
      Telemetry.Clock.(to_us (since_ns t0));
    elapsed_ms
  in
  let next_miss = ref 0 in
  let outcomes =
    List.map
      (function
        | Bad (e, id) ->
          let _ = finish () in
          { line = Response.error ?id ~server:t.server_ e ();
            code = Some e.Request.code;
            cached = false;
            payload = None }
        | Hit (req, payload) ->
          let elapsed_ms = finish () in
          { line =
              Response.ok ?id:req.Request.id ~server:t.server_ ~cached:true
                ~elapsed_ms ~payload ();
            code = None;
            cached = true;
            payload = Some payload }
        | Miss (req, key) ->
          let slot = computed.(!next_miss) in
          incr next_miss;
          let elapsed_ms = finish () in
          (match slot with
           | Ok payload ->
             Cache.store t.cache key payload;
             { line =
                 Response.ok ?id:req.Request.id ~server:t.server_
                   ~cached:false ~elapsed_ms ~payload ();
               code = None;
               cached = false;
               payload = Some payload }
           | Error te ->
             let e = error_of_task te in
             Telemetry.Metrics.incr ~label:e.Request.code
               "serve/rejected_total";
             { line = Response.error ?id:req.Request.id ~server:t.server_ e ();
               code = Some e.Request.code;
               cached = false;
               payload = None }))
      parsed
  in
  Telemetry.Metrics.set "serve/cache_entries"
    (float_of_int (Cache.length t.cache));
  outcomes

let handle_line t line =
  match handle_batch t [ line ] with
  | [ outcome ] -> outcome
  | _ -> failwith "Serve.Engine.handle_line: one line in, one outcome out"
