let fnv1a s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
       h := Int64.logxor !h (Int64.of_int (Char.code c));
       h := Int64.mul !h 0x100000001b3L)
    s;
  Printf.sprintf "%016Lx" !h

let key ~tech ~style ~bits ~seed ~trials =
  fnv1a
    (Printf.sprintf "%s;%s;%d;%d;%d" (Qor.Record.tech_hash tech)
       (Ccplace.Style.name style) bits seed trials)

type t = {
  lock : Mutex.t;
  table : (string, string) Hashtbl.t;
  order : string Queue.t;  (* insertion order, for FIFO eviction *)
  capacity : int;
  dir : string option;
}

let create ?dir ~capacity () =
  (match dir with
   | Some d when not (Sys.file_exists d) -> Unix.mkdir d 0o755
   | Some _ | None -> ());
  { lock = Mutex.create ();
    table = Hashtbl.create 64;
    order = Queue.create ();
    capacity = max 1 capacity;
    dir }

let entry_path dir k = Filename.concat dir (k ^ ".json")

let disk_find t k =
  match t.dir with
  | None -> None
  | Some dir ->
    let path = entry_path dir k in
    if Sys.file_exists path then begin
      let ic = open_in_bin path in
      let payload =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      Some payload
    end
    else None

(* Atomic publish: a reader either sees the whole entry or no entry. *)
let disk_store t k payload =
  match t.dir with
  | None -> ()
  | Some dir ->
    let path = entry_path dir k in
    let tmp = path ^ ".tmp" in
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc payload);
    Sys.rename tmp path

let mem_store_locked t k payload =
  if not (Hashtbl.mem t.table k) then begin
    if Queue.length t.order >= t.capacity then
      Hashtbl.remove t.table (Queue.pop t.order);
    Hashtbl.replace t.table k payload;
    Queue.push k t.order
  end

let find t k =
  let in_memory =
    Mutex.protect t.lock (fun () -> Hashtbl.find_opt t.table k)
  in
  match in_memory with
  | Some _ as hit -> hit
  | None -> begin
      match disk_find t k with
      | Some payload as hit ->
        Mutex.protect t.lock (fun () -> mem_store_locked t k payload);
        hit
      | None -> None
    end

let store t k payload =
  Mutex.protect t.lock (fun () -> mem_store_locked t k payload);
  disk_store t k payload

let length t = Mutex.protect t.lock (fun () -> Hashtbl.length t.table)
