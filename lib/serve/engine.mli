(** The IO-free heart of the placement service: takes request {e lines},
    returns response {e lines}.

    The daemon wraps this in sockets and signals; tests and the
    single-shot CLI drive it directly, so every protocol behaviour —
    validation, verify gating, cache hits, fault isolation — is
    exercisable without a socket.

    Batches are scheduled onto a persistent {!Par.Pool}: the daemon
    drains whatever is queued and hands it over as one batch, so
    concurrent requests compute in parallel while each task keeps the
    pool's per-task fault isolation (a crashing flow answers
    [internal-error]; a {!Verify.Engine.Rejected} flow answers
    [verify-rejected]; the engine itself never dies).  Flow runs inside
    a batch use [jobs = 1] — parallelism comes from running requests
    side by side, which keeps results bitwise-identical to a serial
    server (docs/PARALLEL.md). *)

type t

(** One handled request, pre-rendered.  [line] is the full response
    (without trailing newline); [payload] the spliced [result] bytes
    when [code] is [None] (success). *)
type outcome = {
  line : string;
  code : string option;  (** [None] = ok; [Some code] = the error code *)
  cached : bool;
  payload : string option;
}

(** [create ?cache_dir ?cache_capacity ?jobs ()].  [jobs] resolves via
    {!Par.Jobs.resolve} and sizes the batch pool; [cache_capacity]
    (default 4096) bounds the in-memory cache tier; [cache_dir] enables
    the on-disk tier. *)
val create : ?cache_dir:string -> ?cache_capacity:int -> ?jobs:int -> unit -> t

(** The resolved worker count (for banners and bench provenance). *)
val jobs : t -> int

(** The {!Version.server} string stamped into every response. *)
val server : t -> string

(** [handle_batch t lines] handles each line and returns outcomes in
    submission order.  Cache misses of the batch run concurrently on the
    pool. *)
val handle_batch : t -> string list -> outcome list

(** [handle_line t line] is the single-request form. *)
val handle_line : t -> string -> outcome

(** [shutdown t] joins the pool.  [t] must not be used afterwards. *)
val shutdown : t -> unit
