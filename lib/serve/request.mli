(** One placement-service request: the parsed, validated form of a
    newline-delimited JSON request line (docs/SERVE.md).

    Wire schema — every field optional except [style]/[bits] have
    defaults too, so [{}] is a valid request:

    {v
    {"id": "r42",              client correlation id, echoed back
     "style": "spiral",        spiral | chessboard | rowwise | bc
     "bits": 8,                [2, Ccgrid.Weights.max_bits]
     "granularity": 2,         bc only: cells per block side
     "core_bits": 4,           bc only: inner-core resolution
     "seed": 1,                Monte-Carlo substream seed
     "trials": 0,              Monte-Carlo trials (0 = skip the mc stage)
     "tech": "finfet",         base preset: finfet | bulk
     "overrides": {"unit_cap": 8.0, ...}}   per-field tech overrides
    v}

    Validation is the {!Verify} registry's job: a request whose derived
    tech or style fails an Error-severity rule is rejected {e before} any
    flow work, with the fired rule ids in the structured error. *)

type t = {
  id : string option;        (** client correlation id, echoed in responses *)
  style : Ccplace.Style.t;
  bits : int;
  seed : int;
  trials : int;              (** 0 = no Monte-Carlo stage *)
  tech : Tech.Process.t;     (** base preset with overrides applied *)
}

(** A structured request failure, rendered as the [error] object of an
    error response.  [code] is one of [malformed], [invalid-request],
    [verify-rejected], [queue-full], [internal-error]; [rules] carries
    the fired verify rule ids when [code = verify-rejected]. *)
type error = {
  code : string;
  detail : string;
  rules : string list;
}

(** The tech-override keys {!of_json} accepts, mirroring the float keys
    of {!Tech.Techfile} (layer edits excluded). *)
val override_keys : string list

(** [of_json j] parses and validates one request.  Unknown fields,
    non-integral counts, unknown styles/techs/override keys and
    out-of-range values are [invalid-request]; a derived tech or style
    that fires an Error-severity verify rule is [verify-rejected]. *)
val of_json : Telemetry.Json.t -> (t, error) result

(** [of_line line] is {!of_json} after parsing; a line that is not JSON
    at all is a [malformed] error. *)
val of_line : string -> (t, error) result

(** [to_json ?id ?granularity ?core_bits ?seed ?trials ?tech ?overrides
    ~style ~bits ()] builds a wire request — the client-side encoder the
    load generator and [ccgen request] share.  [style] is the wire name
    ([spiral], [chessboard], [rowwise], [bc]). *)
val to_json :
  ?id:string ->
  ?granularity:int ->
  ?core_bits:int ->
  ?seed:int ->
  ?trials:int ->
  ?tech:string ->
  ?overrides:(string * float) list ->
  style:string ->
  bits:int ->
  unit ->
  Telemetry.Json.t

(** [error_to_json e] is the [error] object of an error response. *)
val error_to_json : error -> Telemetry.Json.t
