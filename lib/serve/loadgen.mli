(** Load generator for [bench serve]: replay a Zipf-skewed mix of
    placement requests against a running daemon and measure what a
    client sees.

    The request universe is the cross product [styles x bits]; shape
    ranks get Zipf weights [1 / (rank+1)^zipf_s], so a skewed mix
    revisits its head shapes constantly — which is exactly when the
    content-addressed cache must earn its keep (the acceptance bar is a
    >= 50% hit-rate at 10k requests).  Sampling uses an explicit
    [Random.State] from [seed]; the same seed replays the same mix.

    Latency is measured per request on the client side (monotonic
    {!Telemetry.Clock}), with up to [window] requests pipelined per
    connection; percentiles use the nearest-rank convention of
    {!Dacmodel.Montecarlo.percentile}. *)

type result = {
  requests : int;
  ok : int;
  errors : int;          (** error responses (should be 0 on a clean mix) *)
  busy : int;            (** queue-full responses (counted, not retried) *)
  cache_hits : int;
  hit_rate : float;      (** [cache_hits / ok] ([0.] when [ok = 0]) *)
  throughput_rps : float;
  p50_ms : float;
  p95_ms : float;
  elapsed_s : float;
}

(** [run ?seed ?window ?styles ?bits_choices ?zipf_s ~requests addr].
    Defaults: [seed 1], [window 64], [styles] = spiral, chessboard,
    rowwise, bc; [bits_choices] = 4, 6, 8; [zipf_s 1.1]. *)
val run :
  ?seed:int ->
  ?window:int ->
  ?styles:string list ->
  ?bits_choices:int list ->
  ?zipf_s:float ->
  requests:int ->
  Daemon.addr ->
  result
