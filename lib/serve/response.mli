(** Wire responses (one JSON object per line; docs/SERVE.md).

    The [ok] envelope is composed by {e splicing} the payload bytes
    verbatim, so a cache hit is byte-identical (in its [result] field)
    to the response the first computation produced. *)

(** [ok ?id ~server ~cached ~elapsed_ms ~payload ()] is
    [{"status":"ok","id":...,"server":...,"cached":...,
    "elapsed_ms":...,"result":<payload>}]. *)
val ok :
  ?id:string ->
  server:string ->
  cached:bool ->
  elapsed_ms:float ->
  payload:string ->
  unit ->
  string

(** [error ?id ~server e ()] is [{"status":"error",...,"error":
    {"code":...,"detail":...,"rules":[...]}}]. *)
val error : ?id:string -> server:string -> Request.error -> unit -> string

(** [busy ?id ~server ~retry_after_s ()] is the backpressure reply:
    [{"status":"busy",...,"retry_after_s":...,"error":{"code":
    "queue-full",...}}]. *)
val busy :
  ?id:string -> server:string -> retry_after_s:float -> unit -> string
