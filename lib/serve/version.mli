(** The toolkit's release identity, as served over the wire.

    [changelog] is the current CHANGELOG.md release; {!server} decorates
    it with the git/host provenance {!Qor.Provenance} already captures,
    producing the [server] field of every serve response and the output
    of [ccgen version]. *)

(** The CHANGELOG.md version of this tree, e.g. ["1.10.0"]. *)
val changelog : string

(** [server ()] is ["ccdac/<version> host=<host> commit=<sha8>"] (commit
    omitted outside a git checkout).  Captured once per call — cheap, no
    subprocess. *)
val server : unit -> string
