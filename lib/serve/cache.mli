(** Content-addressed result cache for the placement service.

    The key is a 16-hex-digit FNV-1a digest of
    [(tech_hash, style, bits, seed, trials)] — every input that can
    change a flow result.  [jobs] is deliberately {e absent}: PR 5 made
    flow results bitwise-identical at every worker count, so one cached
    payload serves requests at any parallelism.

    Values are the {e raw response-payload bytes} (the serialised
    {!Qor.Record} plus any Monte-Carlo summary), not re-encoded JSON
    trees: a cache hit must be byte-identical to the freshly-computed
    response it stands in for, and storing the bytes is what guarantees
    it.

    Two tiers share the key space: a bounded in-memory table (FIFO
    eviction at [capacity]) and an optional on-disk directory, one
    [<key>.json] file per entry, written atomically (temp + rename) so a
    killed server never leaves a torn entry.  Disk hits are promoted
    into memory.  All operations are mutex-guarded and domain-safe. *)

type t

(** [key ~tech ~style ~bits ~seed ~trials] — the content address. *)
val key :
  tech:Tech.Process.t ->
  style:Ccplace.Style.t ->
  bits:int ->
  seed:int ->
  trials:int ->
  string

(** [create ?dir ~capacity ()] — [capacity] bounds the in-memory tier
    (oldest-in evicted first); [dir] enables the disk tier (created if
    missing). *)
val create : ?dir:string -> capacity:int -> unit -> t

(** [find t k] is the cached payload, memory first, then disk. *)
val find : t -> string -> string option

(** [store t k payload] writes both tiers (disk atomically). *)
val store : t -> string -> string -> unit

(** [length t] is the in-memory entry count (for the gauge metric). *)
val length : t -> int
