type addr =
  | Unix_path of string
  | Tcp of string * int

type stats = {
  served : int;
  cache_hits : int;
  errors : int;
  busy : int;
  drained : bool;
}

let addr_to_string = function
  | Unix_path path -> "unix:" ^ path
  | Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

let listen_socket = function
  | Unix_path path ->
    if Sys.file_exists path then Unix.unlink path;
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 64;
    fd
  | Tcp (host, port) ->
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    let inet =
      match Unix.getaddrinfo host (string_of_int port)
              [ Unix.AI_FAMILY Unix.PF_INET; Unix.AI_SOCKTYPE Unix.SOCK_STREAM ]
      with
      | { Unix.ai_addr = Unix.ADDR_INET (a, _); _ } :: _ -> a
      | _ -> Unix.inet_addr_loopback
    in
    Unix.bind fd (Unix.ADDR_INET (inet, port));
    Unix.listen fd 64;
    fd

let write_all fd s =
  let n = String.length s in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write_substring fd s !off (n - !off)
  done

(* One connected client: its socket, the bytes received so far that do
   not yet end in a newline, and whether it hit EOF (an EOF'd client
   stays around until its queued requests have been answered). *)
type client = {
  fd : Unix.file_descr;
  pending : Buffer.t;
  mutable eof : bool;
}

let run ?(max_queue = 256) ?(batch = 32) ?(ready = fun _ -> ()) ~engine addr =
  let stop = Atomic.make false in
  let on_signal = Sys.Signal_handle (fun _ -> Atomic.set stop true) in
  let old_int = Sys.signal Sys.sigint on_signal in
  let old_term = Sys.signal Sys.sigterm on_signal in
  let old_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  let restore () =
    Sys.set_signal Sys.sigint old_int;
    Sys.set_signal Sys.sigterm old_term;
    Sys.set_signal Sys.sigpipe old_pipe;
    match addr with
    | Unix_path path -> if Sys.file_exists path then Unix.unlink path
    | Tcp _ -> ()
  in
  Fun.protect ~finally:restore @@ fun () ->
  let listen_fd = listen_socket addr in
  ready (addr_to_string addr);
  let clients : (Unix.file_descr, client) Hashtbl.t = Hashtbl.create 16 in
  let queue : (Unix.file_descr * string) Queue.t = Queue.create () in
  let served = ref 0 and cache_hits = ref 0 in
  let errors = ref 0 and busy = ref 0 in
  let accepting = ref true in
  let close_listen () =
    if !accepting then begin
      accepting := false;
      Unix.close listen_fd
    end
  in
  let drop_client c =
    Hashtbl.remove clients c.fd;
    Unix.close c.fd
  in
  let send c line =
    match write_all c.fd (line ^ "\n") with
    | () -> ()
    | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
      drop_client c
  in
  let enqueue c line =
    if String.trim line = "" then ()
    else if Queue.length queue >= max_queue then begin
      incr busy;
      Telemetry.Metrics.incr ~label:"queue-full" "serve/rejected_total";
      let retry_after_s = 0.01 *. float_of_int (Queue.length queue) in
      send c (Response.busy ~server:(Engine.server engine) ~retry_after_s ())
    end
    else begin
      Queue.push (c.fd, line) queue;
      Telemetry.Metrics.observe "serve/queue_depth"
        (float_of_int (Queue.length queue))
    end
  in
  let feed c data =
    Buffer.add_string c.pending data;
    let rec split () =
      let s = Buffer.contents c.pending in
      match String.index_opt s '\n' with
      | None -> ()
      | Some i ->
        Buffer.clear c.pending;
        Buffer.add_string c.pending
          (String.sub s (i + 1) (String.length s - i - 1));
        enqueue c (String.sub s 0 i);
        split ()
    in
    split ()
  in
  let read_client c =
    let buf = Bytes.create 65536 in
    match Unix.read c.fd buf 0 (Bytes.length buf) with
    | 0 ->
      (* EOF: a final unterminated line still counts as a request; the
         socket stays open until its queued requests are answered. *)
      if Buffer.length c.pending > 0 then begin
        enqueue c (Buffer.contents c.pending);
        Buffer.clear c.pending
      end;
      c.eof <- true
    | n -> feed c (Bytes.sub_string buf 0 n)
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
      drop_client c
    | exception Unix.Unix_error (Unix.EAGAIN, _, _) -> ()
  in
  let queued_for fd =
    Queue.fold (fun acc (qfd, _) -> acc || qfd = fd) false queue
  in
  let reap_eof () =
    let done_ =
      Hashtbl.fold
        (fun fd c acc -> if c.eof && not (queued_for fd) then c :: acc else acc)
        clients []
    in
    List.iter drop_client done_
  in
  let run_batch () =
    if not (Queue.is_empty queue) then begin
      let take = min batch (Queue.length queue) in
      let entries = List.init take (fun _ -> Queue.pop queue) in
      let outcomes = Engine.handle_batch engine (List.map snd entries) in
      List.iter2
        (fun (fd, _) (o : Engine.outcome) ->
           (match o.Engine.code with
            | None ->
              incr served;
              if o.Engine.cached then incr cache_hits
            | Some _ -> incr errors);
           match Hashtbl.find_opt clients fd with
           | Some c -> send c o.Engine.line
           | None -> ())
        entries outcomes
    end
  in
  let rec loop () =
    if Atomic.get stop then close_listen ();
    if (not !accepting) && Queue.is_empty queue then ()
    else begin
      let fds =
        (if !accepting then [ listen_fd ] else [])
        @ Hashtbl.fold
            (fun fd c acc -> if c.eof then acc else fd :: acc)
            clients []
      in
      let readable =
        match Unix.select fds [] [] 0.05 with
        | r, _, _ -> r
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
      in
      List.iter
        (fun fd ->
           if !accepting && fd = listen_fd then begin
             match Unix.accept listen_fd with
             | cfd, _ ->
               Hashtbl.replace clients cfd
                 { fd = cfd; pending = Buffer.create 256; eof = false }
             | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
           end
           else
             match Hashtbl.find_opt clients fd with
             | Some c -> read_client c
             | None -> ())
        readable;
      run_batch ();
      reap_eof ();
      loop ()
    end
  in
  loop ();
  Hashtbl.iter (fun _ c -> Unix.close c.fd) clients;
  { served = !served;
    cache_hits = !cache_hits;
    errors = !errors;
    busy = !busy;
    drained = Queue.is_empty queue }
