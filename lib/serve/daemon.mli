(** The socket front of the placement service: accept loop, bounded
    queue, batch scheduling onto {!Engine}, graceful drain.

    Protocol (docs/SERVE.md): clients connect to a Unix or TCP socket
    and send one JSON request per line; the daemon answers one JSON
    response per line, in per-client request order.  The daemon never
    dies on a bad request — malformed, invalid and verify-rejected
    requests get structured error responses.

    {b Backpressure.}  Accepted requests wait in a bounded queue; when
    it is full, new requests are answered immediately with a
    [status = "busy"] response carrying [retry_after_s] instead of being
    queued.

    {b Drain.}  SIGINT/SIGTERM set a stop flag (handlers are installed
    for the duration of {!run} and restored on return): the listening
    socket closes at once, every already-queued request is still
    computed and answered, the ledger/cache state is flushed, and {!run}
    returns its lifetime {!stats}. *)

type addr =
  | Unix_path of string       (** Unix-domain stream socket at this path *)
  | Tcp of string * int       (** host, port *)

(** Lifetime counters, returned when the daemon drains. *)
type stats = {
  served : int;       (** ok responses (cache hits included) *)
  cache_hits : int;
  errors : int;       (** error responses (malformed/invalid/rejected/internal) *)
  busy : int;         (** busy responses (queue-full backpressure) *)
  drained : bool;     (** always true on normal return: the queue was empty *)
}

(** [run ?max_queue ?batch ?ready ~engine addr] serves until
    SIGINT/SIGTERM, then drains and returns.  [max_queue] (default 256)
    bounds the accepted-request queue; [batch] (default 32) caps how
    many queued requests are handed to {!Engine.handle_batch} at once;
    [ready] is called once with a printable address after [listen]
    succeeds (the CLI prints it; scripts wait for it). *)
val run :
  ?max_queue:int ->
  ?batch:int ->
  ?ready:(string -> unit) ->
  engine:Engine.t ->
  addr ->
  stats
