type t = {
  ic : in_channel;
  oc : out_channel;
}

let sockaddr_of = function
  | Daemon.Unix_path path -> Unix.ADDR_UNIX path
  | Daemon.Tcp (host, port) ->
    let inet =
      match Unix.getaddrinfo host (string_of_int port)
              [ Unix.AI_FAMILY Unix.PF_INET; Unix.AI_SOCKTYPE Unix.SOCK_STREAM ]
      with
      | { Unix.ai_addr = Unix.ADDR_INET (a, _); _ } :: _ -> a
      | _ -> Unix.inet_addr_loopback
    in
    Unix.ADDR_INET (inet, port)

let connect addr =
  let ic, oc = Unix.open_connection (sockaddr_of addr) in
  { ic; oc }

let send t line =
  output_string t.oc line;
  output_char t.oc '\n';
  flush t.oc

let recv t =
  match input_line t.ic with
  | line -> Some line
  | exception End_of_file -> None

let request t line =
  send t line;
  recv t

let close t =
  (* ic and oc share one fd: close_out_noerr flushes and closes it, the
     second close is a swallowed EBADF. *)
  close_out_noerr t.oc;
  close_in_noerr t.ic
