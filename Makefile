# Convenience targets; dune is the real build system.

.PHONY: all build test lint bench doc clean examples

all: build

build:
	dune build @all

test:
	dune runtest

lint: build
	dune runtest
	dune exec bin/ccgen.exe -- lint --all

bench:
	dune exec bench/main.exe

examples:
	dune exec examples/quickstart.exe
	dune exec examples/dac_tradeoff.exe
	dune exec examples/parallel_wires.exe
	dune exec examples/layout_gallery.exe
	dune exec examples/sar_adc.exe
	dune exec examples/segmented_dac.exe
	dune exec examples/yield_sizing.exe
	dune exec examples/refine_frontier.exe

clean:
	dune clean
