# Convenience targets; dune is the real build system.

.PHONY: all build test lint lvs bench profile doc clean examples

all: build

build:
	dune build @all

test:
	dune runtest

lint: build
	dune runtest
	dune exec bin/ccgen.exe -- lint --all

# Sweepline connectivity certification of every shipped configuration
# (docs/VERIFY.md); lvs.json is what CI uploads as an artifact.
lvs: build
	dune exec bin/ccgen.exe -- lvs --all --werror
	dune exec bin/ccgen.exe -- lvs --all --json > lvs.json

bench:
	dune exec bench/main.exe

# Per-stage time/metric breakdown of the flow (docs/TELEMETRY.md);
# profile.json is what CI uploads as an artifact.
profile: build
	dune exec bin/ccgen.exe -- profile --bits 6,8
	dune exec bin/ccgen.exe -- profile --bits 6,8 --json > profile.json

examples:
	dune exec examples/quickstart.exe
	dune exec examples/dac_tradeoff.exe
	dune exec examples/parallel_wires.exe
	dune exec examples/layout_gallery.exe
	dune exec examples/sar_adc.exe
	dune exec examples/segmented_dac.exe
	dune exec examples/yield_sizing.exe
	dune exec examples/refine_frontier.exe

clean:
	dune clean
