# Convenience targets; dune is the real build system.

.PHONY: all build test lint devlint ccdeps lvs bench profile memprofile scale servebench qor doc clean examples

all: build

build:
	dune build @all

test:
	dune runtest

lint: build
	dune runtest
	dune exec bin/ccgen.exe -- lint --all

# Source-level static analysis of the repo's own OCaml (docs/SRCLINT.md);
# the typed whole-program pass joins in automatically because `build`
# leaves .cmt files around.  cclint.json is what CI uploads.
devlint: build
	dune exec bin/cclint.exe -- --werror
	dune exec bin/cclint.exe -- --json > cclint.json

# Just the typed whole-program families (call-graph effect taint,
# domain-escape races, architecture layering — docs/SRCLINT.md); fails
# if the .cmt files are missing rather than silently degrading.
# ccdeps.json is what CI uploads as an artifact.
ccdeps: build
	dune exec bin/cclint.exe -- --typed --werror
	dune exec bin/cclint.exe -- --typed --json --rules int,arch,meta > ccdeps.json

# Sweepline connectivity certification of every shipped configuration
# (docs/VERIFY.md); lvs.json is what CI uploads as an artifact.
lvs: build
	dune exec bin/ccgen.exe -- lvs --all --werror
	dune exec bin/ccgen.exe -- lvs --all --json > lvs.json

# The bench suite, then a parallel QoR recording: the ledger rows gain
# the measured jobs=4 Monte-Carlo speedup (docs/PARALLEL.md).
bench:
	dune exec bench/main.exe
	dune exec bin/ccgen.exe -- record --jobs 4 --ledger qor_ledger.jsonl

# Per-stage time/metric breakdown of the flow (docs/TELEMETRY.md);
# profile.json is what CI uploads as an artifact.
profile: build
	dune exec bin/ccgen.exe -- profile --bits 6,8
	dune exec bin/ccgen.exe -- profile --bits 6,8 --json > profile.json

# The same matrix with Telemetry.Memory sampling on: per-stage
# allocation/GC deltas (docs/TELEMETRY.md); profile_mem.json is what CI
# uploads as an artifact.
memprofile: build
	dune exec bin/ccgen.exe -- profile --bits 6,8 --mem
	dune exec bin/ccgen.exe -- profile --bits 6,8 --mem --json > profile_mem.json

# Cross-bit-width scaling probe (docs/BENCH.md): run the flow over a
# small bit ladder at jobs=4 with scheduler telemetry on and fit
# per-stage growth exponents; scaling.json is what CI uploads as an
# artifact.
scale: build
	dune exec bin/ccgen.exe -- scale --bits 6,8,10 --trials 50 --jobs 4
	dune exec bin/ccgen.exe -- scale --bits 6,8,10 --trials 50 --jobs 4 --json > scaling.json

# Placement-service load bench (docs/SERVE.md): spawns a daemon child
# process and replays 10k Zipf-skewed requests through it;
# BENCH_serve.json is what CI uploads as an artifact, and the QoR
# ledger gains one serve-decorated row.
servebench: build
	dune exec bench/main.exe -- serve

# QoR regression sentinel (docs/QOR.md): record the default matrix to
# the ledger, then diff the ledger's latest records against the
# committed baseline.  Fails on any regressed or incomparable metric;
# qor_ledger.jsonl and qor_verdicts.json are what CI uploads.
qor: build
	dune exec bin/ccgen.exe -- record --ledger qor_ledger.jsonl
	dune exec bin/ccgen.exe -- diff --baseline BENCH_baseline.json --from-ledger --ledger qor_ledger.jsonl --werror
	dune exec bin/ccgen.exe -- diff --baseline BENCH_baseline.json --from-ledger --ledger qor_ledger.jsonl --json > qor_verdicts.json

examples:
	dune exec examples/quickstart.exe
	dune exec examples/dac_tradeoff.exe
	dune exec examples/parallel_wires.exe
	dune exec examples/layout_gallery.exe
	dune exec examples/sar_adc.exe
	dune exec examples/segmented_dac.exe
	dune exec examples/yield_sizing.exe
	dune exec examples/refine_frontier.exe

clean:
	dune clean
