(* ccgen: command-line front end for the constructive common-centroid
   capacitor-array layout flow.

     ccgen place   -b 8 -s spiral          render a placement
     ccgen run     -b 8 -s bc -g 4         full flow + metric summary
     ccgen compare -b 8                    the four methods side by side
     ccgen tables                          regenerate the paper's tables
     ccgen sweep   -b 8                    parallel-wire sweep (Fig. 6a)
     ccgen profile -b 6,8 --json           per-stage time/metric breakdown
     ccgen scale   -b 6,8,10,12 -j 4       cross-bit-width scaling probe
     ccgen lvs     --all --werror          sweepline connectivity certification
     ccgen record  -b 6,8                  append QoR records to the ledger
     ccgen diff    --baseline FILE         regression sentinel vs baseline
     ccgen history --ledger FILE           QoR trend from the ledger
     ccgen explain -b 8 -s spiral          per-element delay/INL attribution
     ccgen devlint --werror                source-level static analysis (cclint)
     ccgen serve   --socket ccgen.sock     placement-as-a-service daemon
     ccgen request -b 8 -s spiral          one request against a running daemon
     ccgen version                         release + git/host provenance
*)

open Cmdliner

let setup_logs verbose =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (if verbose then Some Logs.Debug else Some Logs.Warning)

let verbose_arg =
  let doc = "Print debug logs (stage timings)." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

let jobs_arg =
  let doc =
    "Worker domains for the parallel sections (Monte-Carlo trials, sweep \
     rows, sizing candidates); 0 = one per core.  Overrides the \
     $(b,CCDAC_JOBS) environment variable; default 1 (serial).  Results \
     are bitwise-identical at every value (docs/PARALLEL.md)."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"JOBS" ~doc)

(* [--jobs] sets the process-wide default that every [?jobs]-taking entry
   point resolves against, so one flag reaches all parallel sections. *)
let apply_jobs = function
  | None -> ()
  | Some n -> Par.Jobs.set_default n

let style_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "spiral" | "s" -> Ok `Spiral
    | "chessboard" | "chess" | "7" -> Ok `Chessboard
    | "rowwise" | "baseline" | "1" -> Ok `Rowwise
    | "bc" | "block" | "block-chessboard" -> Ok `Block
    | other -> Error (`Msg (Printf.sprintf "unknown style %S" other))
  in
  let print ppf s =
    Format.pp_print_string ppf
      (match s with
       | `Spiral -> "spiral"
       | `Chessboard -> "chessboard"
       | `Rowwise -> "rowwise"
       | `Block -> "bc")
  in
  Arg.conv (parse, print)

let resolve_style ~bits ~granularity = function
  | `Spiral -> Ccplace.Style.Spiral
  | `Chessboard -> Ccplace.Style.Chessboard
  | `Rowwise -> Ccplace.Style.Rowwise
  | `Block ->
    Ccplace.Style.Block_chess
      { core_bits = Ccplace.Block_chess.default_core_bits ~bits; granularity }

let bits_arg =
  let doc = "DAC resolution N in bits (the array holds 2^N unit capacitors)." in
  Arg.(value & opt int 8 & info [ "b"; "bits" ] ~docv:"N" ~doc)

let style_arg =
  let doc = "Placement style: spiral, chessboard ([7]), rowwise ([1] proxy), bc." in
  Arg.(value & opt style_conv `Spiral & info [ "s"; "style" ] ~docv:"STYLE" ~doc)

let gran_arg =
  let doc = "Block-chessboard granularity (cells per block side)." in
  Arg.(value & opt int 2 & info [ "g"; "granularity" ] ~docv:"G" ~doc)

let tech_arg =
  let doc = "Technology preset: finfet (default) or bulk." in
  let tech_conv =
    Arg.conv
      ( (fun s ->
           match String.lowercase_ascii s with
           | "finfet" | "finfet-12nm" -> Ok Tech.Process.finfet_12nm
           | "bulk" | "legacy" -> Ok Tech.Process.bulk_legacy
           | _ when Sys.file_exists s -> begin
               match Tech.Techfile.load ~path:s with
               | Ok tech -> Ok tech
               | Error msg ->
                 Error (`Msg (Printf.sprintf "tech file %s: %s" s msg))
             end
           | other ->
             Error
               (`Msg
                  (Printf.sprintf
                     "unknown tech %S (use finfet, bulk, or a tech file path)"
                     other)) ),
        fun ppf t -> Format.pp_print_string ppf t.Tech.Process.name )
  in
  Arg.(value & opt tech_conv Tech.Process.finfet_12nm
       & info [ "t"; "tech" ] ~docv:"TECH" ~doc)

let check_bits bits =
  if bits < 2 || bits > Ccgrid.Weights.max_bits then begin
    Printf.eprintf "ccgen: bits must be in [2, %d]\n" Ccgrid.Weights.max_bits;
    exit 2
  end

(* --- telemetry surface (shared by run and profile) --- *)

let trace_arg =
  let doc =
    "Write a Chrome trace_event JSON trace of the run to $(docv) \
     (load it in chrome://tracing or ui.perfetto.dev)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc = "Dump the metrics registry after the run: $(b,text) or $(b,json)." in
  Arg.(value & opt (some (enum [ ("text", `Text); ("json", `Json) ])) None
       & info [ "metrics" ] ~docv:"FMT" ~doc)

(* Run [f] with a Chrome-trace sink installed when requested. *)
let with_trace trace f =
  match trace with
  | None -> f ()
  | Some path ->
    let r = Telemetry.Sink.with_ (Telemetry.Sink.chrome_trace ~path) f in
    Printf.eprintf "ccgen: wrote trace to %s\n" path;
    r

let print_metrics fmt (dump : Telemetry.Metrics.dump) =
  match fmt with
  | None -> ()
  | Some `Text -> print_string (Telemetry.Metrics.to_text dump)
  | Some `Json ->
    print_endline (Telemetry.Json.to_string (Telemetry.Metrics.to_json dump))

(* --- place --- *)

let place_cmd =
  let save_arg =
    let doc = "Also save the placement to this file (ccdac-placement v1)." in
    Arg.(value & opt (some string) None & info [ "save" ] ~docv:"FILE" ~doc)
  in
  let run bits style granularity save =
    check_bits bits;
    let style = resolve_style ~bits ~granularity style in
    let p = Ccplace.Style.place ~bits style in
    Printf.printf "%s, %d-bit, %dx%d array\n\n" (Ccplace.Style.name style) bits
      p.Ccgrid.Placement.rows p.Ccgrid.Placement.cols;
    print_string (Ccgrid.Render.ascii p);
    Printf.printf "\nlegend: %s\n" (Ccgrid.Render.legend p);
    match save with
    | None -> ()
    | Some path ->
      Ccgrid.Serial.save p ~path;
      Printf.printf "saved to %s\n" path
  in
  let doc = "Build a placement and render it as ASCII art." in
  Cmd.v (Cmd.info "place" ~doc)
    Term.(const run $ bits_arg $ style_arg $ gran_arg $ save_arg)

(* --- run --- *)

let refine_arg =
  let doc =
    "Apply the mirror-pair swap refinement with this swap budget before \
     routing (0 = off)."
  in
  Arg.(value & opt int 0 & info [ "r"; "refine" ] ~docv:"SWAPS" ~doc)

let load_arg =
  let doc = "Analyse a saved placement file instead of placing." in
  Arg.(value & opt (some string) None & info [ "load" ] ~docv:"FILE" ~doc)

let run_cmd =
  let run bits style granularity tech refine_swaps verbose load trace
      metrics_fmt jobs =
    setup_logs verbose;
    apply_jobs jobs;
    check_bits bits;
    let style = resolve_style ~bits ~granularity style in
    let r =
      with_trace trace @@ fun () ->
      match load with
      | Some path -> begin
          match Ccgrid.Serial.load ~path with
          | Error msg ->
            Printf.eprintf "ccgen: %s: %s\n" path msg;
            exit 1
          | Ok placement -> Ccdac.Flow.run_placement ~tech placement
        end
      | None ->
        if refine_swaps <= 0 then Ccdac.Flow.run ~tech ~bits style
        else begin
          let placement = Ccplace.Style.place ~bits style in
          let refined, stats =
            Ccplace.Refine.refine tech ~max_passes:50 ~max_swaps:refine_swaps
              placement
          in
          Printf.printf "refinement: %d swaps, energy %.1f -> %.1f\n\n"
            stats.Ccplace.Refine.swaps stats.Ccplace.Refine.initial_energy
            stats.Ccplace.Refine.final_energy;
          Ccdac.Flow.run_placement ~tech ~style refined
        end
    in
    print_string (Ccdac.Report.summary r);
    print_metrics metrics_fmt
      r.Ccdac.Flow.telemetry.Telemetry.Summary.metrics
  in
  let doc = "Run the full flow (place, route, extract, analyse) and report." in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(const run $ bits_arg $ style_arg $ gran_arg $ tech_arg $ refine_arg
          $ verbose_arg $ load_arg $ trace_arg $ metrics_arg $ jobs_arg)

(* --- compare --- *)

let compare_cmd =
  let run bits tech jobs =
    apply_jobs jobs;
    check_bits bits;
    let rows = [ (bits, Ccdac.Sweep.row ~tech ~bits ()) ] in
    print_string (Ccdac.Report.table1 rows);
    print_newline ();
    print_string (Ccdac.Report.table2 rows)
  in
  let doc = "Compare the four methods ([1], [7], S, best BC) at one resolution." in
  Cmd.v (Cmd.info "compare" ~doc)
    Term.(const run $ bits_arg $ tech_arg $ jobs_arg)

(* --- tables --- *)

let tables_cmd =
  let run tech jobs =
    apply_jobs jobs;
    let rows =
      List.map (fun bits -> (bits, Ccdac.Sweep.row ~tech ~bits ())) [ 6; 7; 8; 9; 10 ]
    in
    print_string (Ccdac.Report.table1 rows);
    print_newline ();
    print_string (Ccdac.Report.table2 rows);
    print_newline ();
    let runtimes =
      List.map
        (fun bits ->
           let _, s = Ccdac.Flow.place_route ~tech ~bits Ccplace.Style.Spiral in
           let _, b =
             Ccdac.Flow.place_route ~tech ~bits (Ccplace.Style.block_default ~bits)
           in
           (bits, s, b))
        [ 6; 7; 8; 9; 10 ]
    in
    print_string (Ccdac.Report.table3 runtimes);
    print_newline ();
    print_string (Ccdac.Report.fig6b rows)
  in
  let doc = "Regenerate the paper's Tables I-III and Fig. 6b." in
  Cmd.v (Cmd.info "tables" ~doc) Term.(const run $ tech_arg $ jobs_arg)

(* --- svg --- *)

let svg_cmd =
  let out_arg =
    let doc = "Output SVG file path." in
    Arg.(value & opt string "layout.svg" & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  let run bits style granularity tech path =
    check_bits bits;
    let style = resolve_style ~bits ~granularity style in
    let p = Ccplace.Style.place ~bits style in
    let layout =
      Ccroute.Layout.route tech
        ~p_of_cap:(Ccdac.Flow.default_parallel ~bits style) p
    in
    Ccroute.Check.assert_clean layout;
    Ccroute.Svg.write layout ~path;
    Printf.printf "wrote %s (%.0f x %.0f um, %d wires)\n" path
      layout.Ccroute.Layout.width layout.Ccroute.Layout.height
      (List.length layout.Ccroute.Layout.wires)
  in
  let doc = "Route a placement and render it to SVG (cf. the paper's Fig. 5)." in
  Cmd.v (Cmd.info "svg" ~doc)
    Term.(const run $ bits_arg $ style_arg $ gran_arg $ tech_arg $ out_arg)

(* --- mc --- *)

let mc_cmd =
  let trials_arg =
    let doc = "Number of Monte-Carlo trials." in
    Arg.(value & opt int 500 & info [ "n"; "trials" ] ~docv:"N" ~doc)
  in
  let run bits style granularity tech trials jobs =
    apply_jobs jobs;
    check_bits bits;
    let style = resolve_style ~bits ~granularity style in
    let r = Ccdac.Flow.run ~tech ~bits style in
    let mc =
      Dacmodel.Montecarlo.run tech ~trials
        ~top_parasitic:r.Ccdac.Flow.parasitics.Extract.Parasitics.total_top_cap
        r.Ccdac.Flow.placement
    in
    Printf.printf
      "%s %d-bit, %d trials\n\
      \  analytic 3-sigma : INL %.3f / DNL %.3f LSB\n\
      \  Monte-Carlo mean : INL %.3f / DNL %.3f LSB\n\
      \  Monte-Carlo p95  : INL %.3f / DNL %.3f LSB\n\
      \  Monte-Carlo max  : INL %.3f / DNL %.3f LSB\n\
      \  yield (0.5 LSB)  : %.1f%%\n"
      (Ccplace.Style.name style) bits trials r.Ccdac.Flow.max_inl
      r.Ccdac.Flow.max_dnl mc.Dacmodel.Montecarlo.mean_inl
      mc.Dacmodel.Montecarlo.mean_dnl mc.Dacmodel.Montecarlo.p95_inl
      mc.Dacmodel.Montecarlo.p95_dnl mc.Dacmodel.Montecarlo.max_inl
      mc.Dacmodel.Montecarlo.max_dnl
      (100. *. mc.Dacmodel.Montecarlo.yield)
  in
  let doc = "Monte-Carlo linearity analysis (the numerical-yield alternative)." in
  Cmd.v (Cmd.info "mc" ~doc)
    Term.(const run $ bits_arg $ style_arg $ gran_arg $ tech_arg $ trials_arg
          $ jobs_arg)

(* --- spectrum --- *)

let spectrum_cmd =
  let seed_arg =
    let doc = "Mismatch sample seed (negative = nominal, no random sample)." in
    Arg.(value & opt int (-1) & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let run bits style granularity tech seed =
    check_bits bits;
    let style = resolve_style ~bits ~granularity style in
    let p = Ccplace.Style.place ~bits style in
    let sample =
      if seed < 0 then None
      else begin
        let cov =
          Capmodel.Covariance.build tech
            (Ccgrid.Placement.positions_by_cap tech p)
        in
        Some (Capmodel.Gauss.draw (Capmodel.Gauss.sampler ~seed cov))
      end
    in
    let s = Dacmodel.Spectrum.analyze tech ?sample p in
    Printf.printf
      "%s %d-bit%s\n\
      \  SNDR : %.1f dB (ideal bound %.1f dB)\n\
      \  SFDR : %.1f dB\n\
      \  THD  : %.1f dB\n\
      \  ENOB : %.2f bits\n"
      (Ccplace.Style.name style) bits
      (if seed < 0 then " (nominal)" else Printf.sprintf " (sample seed %d)" seed)
      s.Dacmodel.Spectrum.sndr_db
      (Dacmodel.Spectrum.ideal_sndr_db ~bits)
      s.Dacmodel.Spectrum.sfdr_db s.Dacmodel.Spectrum.thd_db
      s.Dacmodel.Spectrum.enob
  in
  let doc = "Spectral characterisation: SNDR/SFDR/THD of a reconstructed sine." in
  Cmd.v (Cmd.info "spectrum" ~doc)
    Term.(const run $ bits_arg $ style_arg $ gran_arg $ tech_arg $ seed_arg)

(* --- verify --- *)

let verify_cmd =
  let run bits style granularity tech =
    check_bits bits;
    let style = resolve_style ~bits ~granularity style in
    let p = Ccplace.Style.place ~bits style in
    let layout =
      Ccroute.Layout.route tech
        ~p_of_cap:(Ccdac.Flow.default_parallel ~bits style) p
    in
    match Ccroute.Check.run layout with
    | [] ->
      Printf.printf "%s %d-bit: layout clean (%d wires, %d vias checked)\n"
        (Ccplace.Style.name style) bits
        (List.length layout.Ccroute.Layout.wires)
        (List.length layout.Ccroute.Layout.vias)
    | violations ->
      List.iter
        (fun v ->
           Printf.printf "%s\n" (Format.asprintf "%a" Ccroute.Check.pp_violation v))
        violations;
      exit 1
  in
  let doc = "Route a placement and run the post-route verification checks." in
  Cmd.v (Cmd.info "verify" ~doc)
    Term.(const run $ bits_arg $ style_arg $ gran_arg $ tech_arg)

(* --- lint --- *)

let lint_cmd =
  let json_arg =
    let doc = "Emit machine-readable JSON instead of text." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let werror_arg =
    let doc = "Treat warnings as errors (nonzero exit on any finding)." in
    Arg.(value & flag & info [ "werror" ] ~doc)
  in
  let all_arg =
    let doc =
      "Lint every shipped configuration: the four placement styles \
       (spiral, chessboard, rowwise, and the full block-chessboard family) \
       at 4 to 10 bits."
    in
    Arg.(value & flag & info [ "all" ] ~doc)
  in
  let rules_arg =
    let doc = "Print the rule catalogue (with $(b,--json): as JSON) and exit." in
    Arg.(value & flag & info [ "rules" ] ~doc)
  in
  let load_lint_arg =
    let doc = "Lint a saved placement file instead of placing a style." in
    Arg.(value & opt (some string) None & info [ "load" ] ~docv:"FILE" ~doc)
  in
  let print_rules json =
    if json then print_endline (Verify.Report.json_rules ())
    else
      List.iter
        (fun (r : Verify.Rule.t) ->
           Printf.printf "%-34s %-9s %-7s %s\n" r.Verify.Rule.id
             (Verify.Rule.category_name r.Verify.Rule.category)
             (Verify.Rule.severity_name r.Verify.Rule.severity)
             r.Verify.Rule.doc)
        Verify.Registry.all
  in
  (* one linted configuration: label + diagnostics *)
  let lint_style tech bits style =
    let parallel = Ccdac.Flow.default_parallel ~bits style in
    let label = Printf.sprintf "%s %d-bit" (Ccplace.Style.name style) bits in
    (label, Verify.Engine.lint ~parallel ~tech ~bits style)
  in
  let run bits style granularity tech json werror all rules load =
    if rules then print_rules json
    else begin
      let runs =
        match load with
        | Some path -> begin
            match Ccgrid.Serial.load ~path with
            | Error msg ->
              Printf.eprintf "ccgen: %s: %s\n" path msg;
              exit 2
            | Ok placement ->
              [ (path, Verify.Engine.lint_placement ~tech placement) ]
          end
        | None when all ->
          List.concat_map
            (fun bits ->
               List.map (lint_style tech bits)
                 (Ccplace.Style.Spiral :: Ccplace.Style.Chessboard
                  :: Ccplace.Style.Rowwise
                  :: Ccplace.Style.block_family ~bits))
            [ 4; 5; 6; 7; 8; 9; 10 ]
        | None ->
          check_bits bits;
          [ lint_style tech bits (resolve_style ~bits ~granularity style) ]
      in
      if json then begin
        print_string "{\"version\": 1, \"runs\": [";
        List.iteri
          (fun i (label, diags) ->
             if i > 0 then print_string ", ";
             print_string (Verify.Report.json ~label diags))
          runs;
        print_endline "]}"
      end
      else
        List.iter
          (fun (label, diags) ->
             match diags with
             | [] -> Printf.printf "%s: clean\n" label
             | diags ->
               Printf.printf "%s: %s\n" label (Verify.Report.summary_line diags);
               List.iter
                 (fun d ->
                    Printf.printf "  %s\n"
                      (Format.asprintf "%a" Verify.Diagnostic.pp d))
                 (Verify.Diagnostic.sort diags))
          runs;
      let dirty =
        List.exists
          (fun (_, diags) ->
             Result.is_error (Verify.Engine.gate ~werror diags))
          runs
      in
      if not json then begin
        let total = List.length runs in
        let clean = List.length (List.filter (fun (_, d) -> d = []) runs) in
        if total > 1 then
          Printf.printf "%d configuration(s), %d clean\n" total clean
      end;
      if dirty then exit 1
    end
  in
  let doc =
    "Run the rule-registry linter over tech, style, placement and routed \
     layout; nonzero exit on any error-severity diagnostic."
  in
  Cmd.v (Cmd.info "lint" ~doc)
    Term.(const run $ bits_arg $ style_arg $ gran_arg $ tech_arg $ json_arg
          $ werror_arg $ all_arg $ rules_arg $ load_lint_arg)

(* --- lvs --- *)

let lvs_cmd =
  let json_arg =
    let doc = "Emit machine-readable JSON instead of text." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let werror_arg =
    let doc = "Treat warnings as errors (nonzero exit on any finding)." in
    Arg.(value & flag & info [ "werror" ] ~doc)
  in
  let all_arg =
    let doc =
      "Certify every shipped configuration: spiral, chessboard, rowwise and \
       the default block-chessboard at 4, 6, 8 and 10 bits."
    in
    Arg.(value & flag & info [ "all" ] ~doc)
  in
  (* one certified configuration: label + extraction stats + diagnostics *)
  let lvs_style tech granularity bits s =
    let style = resolve_style ~bits ~granularity s in
    let p = Ccplace.Style.place ~bits style in
    let layout =
      Ccroute.Layout.route tech
        ~p_of_cap:(Ccdac.Flow.default_parallel ~bits style) p
    in
    let label = Printf.sprintf "%s %d-bit" (Ccplace.Style.name style) bits in
    (label, Lvs.Check.run layout)
  in
  let run bits style granularity tech json werror all =
    let runs =
      if all then
        List.concat_map
          (fun bits ->
             List.map
               (lvs_style tech granularity bits)
               [ `Spiral; `Chessboard; `Rowwise; `Block ])
          [ 4; 6; 8; 10 ]
      else begin
        check_bits bits;
        [ lvs_style tech granularity bits style ]
      end
    in
    if json then begin
      print_string "{\"version\": 1, \"runs\": [";
      List.iteri
        (fun i (label, (r : Lvs.Check.result)) ->
           if i > 0 then print_string ", ";
           Printf.printf
             "{\"label\": \"%s\", \"stats\": {\"shapes\": %d, \
              \"contacts\": %d, \"components\": %d}, \"report\": %s}"
             label r.Lvs.Check.stats.Lvs.Check.shapes
             r.Lvs.Check.stats.Lvs.Check.contacts
             r.Lvs.Check.stats.Lvs.Check.components
             (Verify.Report.json r.Lvs.Check.diagnostics))
        runs;
      print_endline "]}"
    end
    else
      List.iter
        (fun (label, (r : Lvs.Check.result)) ->
           let s = r.Lvs.Check.stats in
           match r.Lvs.Check.diagnostics with
           | [] ->
             Printf.printf
               "%s: clean (%d shapes, %d contacts, %d components)\n" label
               s.Lvs.Check.shapes s.Lvs.Check.contacts s.Lvs.Check.components
           | diags ->
             Printf.printf "%s: %s\n" label (Verify.Report.summary_line diags);
             List.iter
               (fun d ->
                  Printf.printf "  %s\n"
                    (Format.asprintf "%a" Verify.Diagnostic.pp d))
               (Verify.Diagnostic.sort diags))
        runs;
    let dirty =
      List.exists
        (fun (_, (r : Lvs.Check.result)) ->
           Result.is_error
             (Verify.Engine.gate ~werror r.Lvs.Check.diagnostics))
        runs
    in
    if not json then begin
      let total = List.length runs in
      let clean =
        List.length
          (List.filter
             (fun (_, (r : Lvs.Check.result)) ->
                r.Lvs.Check.diagnostics = [])
             runs)
      in
      if total > 1 then
        Printf.printf "%d configuration(s), %d clean\n" total clean
    end;
    if dirty then exit 1
  in
  let doc =
    "Extract whole-layout connectivity with the sweepline engine and certify \
     it against the intended netlist (opens, shorts, floating cells, \
     Netbuild cross-check); nonzero exit on any lvs/* error."
  in
  Cmd.v (Cmd.info "lvs" ~doc)
    Term.(const run $ bits_arg $ style_arg $ gran_arg $ tech_arg $ json_arg
          $ werror_arg $ all_arg)

(* --- profile --- *)

let profile_cmd =
  let bits_list_arg =
    let doc = "Comma-separated resolutions to profile." in
    Arg.(value & opt (list int) [ 6; 8 ]
         & info [ "b"; "bits" ] ~docv:"N,.." ~doc)
  in
  let styles_arg =
    let doc = "Comma-separated styles to profile (default: all four)." in
    Arg.(value
         & opt (list style_conv) [ `Rowwise; `Chessboard; `Spiral; `Block ]
         & info [ "s"; "styles" ] ~docv:"STYLE,.." ~doc)
  in
  let repeat_arg =
    let doc =
      "Runs per configuration; the reported stage times are those of the \
       run with the median place+route time."
    in
    Arg.(value & opt int 3 & info [ "repeat" ] ~docv:"R" ~doc)
  in
  let json_arg =
    let doc = "Emit the machine-readable profile document (docs/BENCH.md)." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let mem_arg =
    let doc =
      "Sample GC statistics around every stage (docs/TELEMETRY.md): per-stage \
       allocated MB, peak heap MB and major collections, in the table and in \
       the JSON document's per-run memory object."
    in
    Arg.(value & flag & info [ "mem" ] ~doc)
  in
  let stage_names = [ "place"; "route"; "verify"; "lvs"; "extract"; "analyse" ] in
  let stage_s (r : Ccdac.Flow.result) name =
    Option.value ~default:0. (Telemetry.Summary.stage_seconds r.telemetry name)
  in
  let stage_mb (r : Ccdac.Flow.result) name =
    Option.value ~default:0. (Telemetry.Summary.stage_alloc_mb r.telemetry name)
  in
  let memory_json (r : Ccdac.Flow.result) =
    let open Telemetry.Json in
    match Telemetry.Summary.total_memory r.telemetry with
    | None -> Null
    | Some d ->
      Obj
        [ ( "stages_alloc_mb",
            Obj (List.map (fun n -> (n, Num (stage_mb r n))) stage_names) );
          ("alloc_mb_total", Num (Telemetry.Memory.allocated_mb d));
          ("peak_heap_mb", Num (Telemetry.Memory.peak_heap_mb d));
          ( "major_collections",
            Num (float_of_int d.Telemetry.Memory.major_collections) ) ]
  in
  let median_run runs =
    let sorted =
      List.sort
        (fun a b ->
           Float.compare a.Ccdac.Flow.elapsed_place_route_s
             b.Ccdac.Flow.elapsed_place_route_s)
        runs
    in
    List.nth sorted (List.length sorted / 2)
  in
  let json_of_run (r : Ccdac.Flow.result) =
    let open Telemetry.Json in
    Obj
      [ ("style", Str (Ccplace.Style.name r.style));
        ("bits", Num (float_of_int r.bits));
        ( "stages_s",
          Obj (List.map (fun n -> (n, Num (stage_s r n))) stage_names) );
        ("place_route_s", Num r.elapsed_place_route_s);
        ("f3db_mhz", Num r.f3db_mhz);
        ("max_inl_lsb", Num r.max_inl);
        ("max_dnl_lsb", Num r.max_dnl);
        ( "via_cuts",
          Num (float_of_int r.parasitics.Extract.Parasitics.total_via_cuts) );
        ("bends", Num (float_of_int r.parasitics.Extract.Parasitics.total_bends));
        ("wirelength_um", Num r.parasitics.Extract.Parasitics.total_wirelength);
        ("area_um2", Num r.area);
        ("memory", memory_json r) ]
  in
  let run bits_list styles granularity tech repeat json mem verbose trace
      metrics_fmt jobs =
    setup_logs verbose;
    apply_jobs jobs;
    if repeat < 1 then begin
      Printf.eprintf "ccgen: --repeat must be >= 1\n";
      exit 2
    end;
    List.iter check_bits bits_list;
    (* Scheduler recording is on for the whole profile: when --jobs sends
       work through Par.Pool, the run picks up sched/* metrics, the
       per-worker sched.chunk tracks in the --trace file, and the
       scheduler section below.  Serial profiles record no batches and
       the section stays silent. *)
    let (medians, dump), sched_batches =
      Par.Sched.with_enabled true @@ fun () ->
      Par.Sched.collect @@ fun () ->
      Telemetry.Memory.with_enabled mem @@ fun () ->
      Telemetry.Metrics.collect @@ fun () ->
      with_trace trace @@ fun () ->
      Telemetry.Span.with_ ~name:"profile" @@ fun () ->
      List.concat_map
        (fun bits ->
           List.map
             (fun s ->
                let style = resolve_style ~bits ~granularity s in
                median_run
                  (List.init repeat (fun _ -> Ccdac.Flow.run ~tech ~bits style)))
             styles)
        bits_list
    in
    let sched = Par.Sched.summarize sched_batches in
    if json then begin
      let open Telemetry.Json in
      print_endline
        (to_string
           (Obj
              [ ("version", Num 1.);
                ("tech", Str tech.Tech.Process.name);
                ("repeat", Num (float_of_int repeat));
                ("runs", Arr (List.map json_of_run medians));
                ( "sched",
                  if sched.Par.Sched.batches = 0 then Null
                  else Par.Sched.summary_to_json sched );
                ("metrics", Telemetry.Metrics.to_json dump) ]))
    end
    else begin
      Printf.printf
        "%-18s %4s  %9s %9s %9s %9s %9s %9s  %8s %6s %9s\n" "style" "bits"
        "place ms" "route ms" "verify ms" "lvs ms" "extract ms" "analyse ms"
        "p+r ms" "vias" "f3dB MHz";
      List.iter
        (fun (r : Ccdac.Flow.result) ->
           let ms n = 1e3 *. stage_s r n in
           Printf.printf
             "%-18s %4d  %9.2f %9.2f %9.2f %9.2f %9.2f %9.2f  %8.2f %6d %9.0f\n"
             (Ccplace.Style.name r.style) r.bits (ms "place") (ms "route")
             (ms "verify") (ms "lvs") (ms "extract") (ms "analyse")
             (1e3 *. r.elapsed_place_route_s)
             r.parasitics.Extract.Parasitics.total_via_cuts r.f3db_mhz)
        medians;
      Printf.printf "(%d run(s) per configuration; median by place+route)\n"
        repeat;
      if mem then begin
        Printf.printf "\nmemory (allocated MB per stage; median runs):\n";
        Printf.printf
          "%-18s %4s  %9s %9s %9s %9s %9s %9s  %9s %8s %6s\n" "style" "bits"
          "place" "route" "verify" "lvs" "extract" "analyse" "total MB"
          "peak MB" "majors";
        List.iter
          (fun (r : Ccdac.Flow.result) ->
             match Telemetry.Summary.total_memory r.telemetry with
             | None -> ()
             | Some d ->
               Printf.printf
                 "%-18s %4d  %9.2f %9.2f %9.2f %9.2f %9.2f %9.2f  %9.2f \
                  %8.2f %6d\n"
                 (Ccplace.Style.name r.style) r.bits (stage_mb r "place")
                 (stage_mb r "route") (stage_mb r "verify") (stage_mb r "lvs")
                 (stage_mb r "extract") (stage_mb r "analyse")
                 (Telemetry.Memory.allocated_mb d)
                 (Telemetry.Memory.peak_heap_mb d)
                 d.Telemetry.Memory.major_collections)
          medians
      end;
      let dists =
        List.filter
          (fun (p : Telemetry.Metrics.point) ->
             match p.Telemetry.Metrics.value with
             | Telemetry.Metrics.Dist _ -> true
             | Telemetry.Metrics.Count _ | Telemetry.Metrics.Value _ -> false)
          (Telemetry.Metrics.points dump)
      in
      if dists <> [] then begin
        Printf.printf "histograms:\n";
        List.iter
          (fun (p : Telemetry.Metrics.point) ->
             let q x =
               match Telemetry.Metrics.quantile p.Telemetry.Metrics.value x with
               | Some v -> Printf.sprintf "%g" v
               | None -> "-"
             in
             Printf.printf "  %-28s p50=%s p95=%s p99=%s\n"
               p.Telemetry.Metrics.metric.Telemetry.Metric.id (q 0.5) (q 0.95)
               (q 0.99))
          dists
      end;
      if sched.Par.Sched.batches > 0 then
        Format.printf "scheduler: %a@." Par.Sched.pp_summary sched;
      print_metrics metrics_fmt dump
    end
  in
  let doc =
    "Profile the flow over a (style, bits) matrix: per-stage wall time and \
     layout metrics, with optional GC sampling ($(b,--mem)), Chrome trace \
     and metrics dump.  With $(b,--jobs) > 1 the report also carries the \
     Par.Pool scheduler summary (docs/PARALLEL.md)."
  in
  Cmd.v (Cmd.info "profile" ~doc)
    Term.(const run $ bits_list_arg $ styles_arg $ gran_arg $ tech_arg
          $ repeat_arg $ json_arg $ mem_arg $ verbose_arg $ trace_arg
          $ metrics_arg $ jobs_arg)

(* --- scale: cross-bit-width scaling probe --- *)

let scale_cmd =
  let bits_list_arg =
    let doc =
      "Comma-separated bit-width ladder to probe (each in [2, 14]); the \
       growth exponents are fitted across these rungs."
    in
    Arg.(value & opt (list int) [ 6; 8; 10; 12 ]
         & info [ "b"; "bits" ] ~docv:"N,.." ~doc)
  in
  let trials_arg =
    let doc = "Monte-Carlo trials for the mc stage of each rung." in
    Arg.(value & opt int 100 & info [ "trials" ] ~docv:"T" ~doc)
  in
  let seed_arg =
    let doc = "Monte-Carlo seed (fixed so ladders are reproducible)." in
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"S" ~doc)
  in
  let json_arg =
    let doc = "Emit the machine-readable scaling report (docs/BENCH.md)." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let run bits_list style granularity tech trials seed json verbose trace jobs
      =
    setup_logs verbose;
    apply_jobs jobs;
    List.iter check_bits bits_list;
    if trials < 1 then begin
      Printf.eprintf "ccgen: --trials must be >= 1\n";
      exit 2
    end;
    let style_of_bits bits = resolve_style ~bits ~granularity style in
    let t =
      Par.Sched.with_enabled true @@ fun () ->
      with_trace trace @@ fun () ->
      Ccdac.Scaling.run ~tech ~style_of_bits ~trials ~seed ?jobs bits_list
    in
    if json then
      print_endline (Telemetry.Json.to_string (Ccdac.Scaling.to_json t))
    else Format.printf "%a@." Ccdac.Scaling.pp t
  in
  let doc =
    "Run the full flow (plus a Monte-Carlo stage) across a bit-width ladder \
     and fit per-stage log-log growth exponents against the unit-cell count \
     — the scaling probe (docs/BENCH.md).  GC sampling is always on; \
     scheduler recording is on, so with $(b,--jobs) > 1 the report carries \
     pool utilization."
  in
  Cmd.v (Cmd.info "scale" ~doc)
    Term.(const run $ bits_list_arg $ style_arg $ gran_arg $ tech_arg
          $ trials_arg $ seed_arg $ json_arg $ verbose_arg $ trace_arg
          $ jobs_arg)

(* --- qor: record / diff / history / explain --- *)

let ledger_arg =
  let doc = "QoR ledger file (JSON Lines, appended to by $(b,record))." in
  Arg.(value & opt string "qor_ledger.jsonl"
       & info [ "ledger" ] ~docv:"FILE" ~doc)

let qor_json_arg =
  let doc = "Emit machine-readable JSON instead of text." in
  Arg.(value & flag & info [ "json" ] ~doc)

(* Median-of-repeat flow runs for one configuration, by place+route time —
   the same discipline ccgen profile uses. *)
let qor_median_run ~tech ~bits ~repeat style =
  let runs = List.init repeat (fun _ -> Ccdac.Flow.run ~tech ~bits style) in
  let sorted =
    List.sort
      (fun a b ->
         Float.compare a.Ccdac.Flow.elapsed_place_route_s
           b.Ccdac.Flow.elapsed_place_route_s)
      runs
  in
  List.nth sorted (List.length sorted / 2)

let qor_matrix ?(jobs = 1) ?(par_speedup = Float.nan) ~tech ~granularity
    ~repeat bits_list styles =
  List.concat_map
    (fun bits ->
       List.map
         (fun s ->
            let style = resolve_style ~bits ~granularity s in
            Qor.Record.of_result ~repeat ~jobs ~par_speedup
              (qor_median_run ~tech ~bits ~repeat style))
         styles)
    bits_list

let qor_bits_list_arg =
  let doc = "Comma-separated resolutions to record." in
  Arg.(value & opt (list int) [ 6; 8 ] & info [ "b"; "bits" ] ~docv:"N,.." ~doc)

let qor_styles_arg =
  let doc = "Comma-separated styles (default: all four)." in
  Arg.(value & opt (list style_conv) [ `Rowwise; `Chessboard; `Spiral; `Block ]
       & info [ "s"; "styles" ] ~docv:"STYLE,.." ~doc)

let qor_repeat_arg =
  let doc =
    "Runs per configuration; the recorded run is the one with the median \
     place+route time."
  in
  Arg.(value & opt int 3 & info [ "repeat" ] ~docv:"R" ~doc)

let qor_mem_arg =
  let doc =
    "Sample GC statistics during the runs so the records carry the \
     alloc_mb_total / peak_heap_mb / major_collections fields the memory \
     tolerance policies judge (docs/QOR.md)."
  in
  Arg.(value & flag & info [ "mem" ] ~doc)

let record_cmd =
  let run bits_list styles granularity tech repeat ledger json mem verbose jobs
      =
    setup_logs verbose;
    apply_jobs jobs;
    if repeat < 1 then begin
      Printf.eprintf "ccgen: --repeat must be >= 1\n";
      exit 2
    end;
    List.iter check_bits bits_list;
    (* measure the parallel speedup once per invocation (serial runs
       record nan) and stamp it on every record of the batch *)
    let jobs_n = Par.Jobs.resolve None in
    let par_speedup =
      if jobs_n <= 1 then Float.nan
      else (Ccdac.Parbench.mc_speedup ~tech ~jobs:jobs_n ()).Ccdac.Parbench.speedup
    in
    let records, _ =
      Telemetry.Memory.with_enabled mem @@ fun () ->
      Telemetry.Metrics.collect @@ fun () ->
      Telemetry.Span.with_ ~name:"qor.record" @@ fun () ->
      let records =
        qor_matrix ~jobs:jobs_n ~par_speedup ~tech ~granularity ~repeat
          bits_list styles
      in
      (try List.iter (fun r -> Qor.Ledger.append ~path:ledger r) records
       with Sys_error e ->
         Printf.eprintf "ccgen: cannot append to ledger: %s\n" e;
         exit 1);
      records
    in
    if json then
      print_endline
        (Telemetry.Json.to_string
           (Telemetry.Json.Arr (List.map Qor.Record.to_json records)))
    else begin
      List.iter
        (fun (r : Qor.Record.t) ->
           Printf.printf
             "%-28s f3dB %8.0f MHz  |INL| %6.3f  |DNL| %6.3f  vias %5d  \
              p+r %7.2f ms\n"
             r.Qor.Record.label r.Qor.Record.f3db_mhz r.Qor.Record.max_inl_lsb
             r.Qor.Record.max_dnl_lsb r.Qor.Record.via_cuts
             (1e3 *. r.Qor.Record.place_route_s))
        records;
      Printf.printf "recorded %d run(s) to %s\n" (List.length records) ledger
    end
  in
  let doc =
    "Run a (style, bits) matrix and append one schema-versioned QoR record \
     per configuration to the ledger."
  in
  Cmd.v (Cmd.info "record" ~doc)
    Term.(const run $ qor_bits_list_arg $ qor_styles_arg $ gran_arg $ tech_arg
          $ qor_repeat_arg $ ledger_arg $ qor_json_arg $ qor_mem_arg
          $ verbose_arg $ jobs_arg)

let baseline_arg =
  let doc = "Baseline document to diff against (BENCH_baseline.json)." in
  Arg.(required & opt (some string) None
       & info [ "baseline" ] ~docv:"FILE" ~doc)

let diff_cmd =
  let from_ledger_arg =
    let doc =
      "Compare the latest ledger record of each configuration instead of \
       running the flow afresh."
    in
    Arg.(value & flag & info [ "from-ledger" ] ~doc)
  in
  let werror_arg =
    let doc = "Also fail on warning-severity regressions (times, area)." in
    Arg.(value & flag & info [ "werror" ] ~doc)
  in
  let run bits_list styles granularity tech repeat ledger from_ledger baseline
      json mem werror verbose =
    setup_logs verbose;
    List.iter check_bits bits_list;
    let baseline_records =
      match Qor.Baseline.load ~path:baseline with
      | Ok rs -> rs
      | Error e ->
        Printf.eprintf "ccgen: %s\n" e;
        exit 2
    in
    let current =
      if from_ledger then begin
        match Qor.Ledger.load ~path:ledger with
        | records, complaints ->
          List.iter (fun c -> Printf.eprintf "ccgen: %s\n" c) complaints;
          Qor.Ledger.latest_by_label records
        | exception Sys_error e ->
          Printf.eprintf "ccgen: cannot read ledger: %s\n" e;
          exit 2
      end
      else
        Telemetry.Memory.with_enabled mem @@ fun () ->
        Telemetry.Span.with_ ~name:"qor.diff" @@ fun () ->
        qor_matrix ~tech ~granularity ~repeat bits_list styles
    in
    let cmp = Qor.Compare.diff ~baseline:baseline_records ~current in
    if json then
      print_endline (Telemetry.Json.to_string (Qor.Compare.to_json cmp))
    else print_string (Qor.Compare.text cmp);
    match Qor.Compare.gate ~werror cmp with
    | Ok () -> ()
    | Error failing ->
      if not json then
        Printf.eprintf "ccgen: QoR regression: %s\n"
          (String.concat ", "
             (List.map
                (fun (f : Qor.Compare.finding) ->
                   Printf.sprintf "%s (%s)" f.Qor.Compare.policy.Qor.Policy.id
                     f.Qor.Compare.label)
                failing));
      exit 1
  in
  let doc =
    "Diff fresh runs (or, with $(b,--from-ledger), the ledger's latest \
     records) against a committed baseline under the per-metric tolerance \
     policies; nonzero exit on regression."
  in
  Cmd.v (Cmd.info "diff" ~doc)
    Term.(const run $ qor_bits_list_arg $ qor_styles_arg $ gran_arg $ tech_arg
          $ qor_repeat_arg $ ledger_arg $ from_ledger_arg $ baseline_arg
          $ qor_json_arg $ qor_mem_arg $ werror_arg $ verbose_arg)

let history_cmd =
  let last_arg =
    let doc = "Show only the last $(docv) records per configuration." in
    Arg.(value & opt int 10 & info [ "n"; "last" ] ~docv:"N" ~doc)
  in
  let label_arg =
    let doc = "Restrict to one configuration label, e.g. \"spiral b8\"." in
    Arg.(value & opt (some string) None & info [ "label" ] ~docv:"LABEL" ~doc)
  in
  let run ledger last label json =
    let records, complaints =
      try Qor.Ledger.load ~path:ledger
      with Sys_error e ->
        Printf.eprintf "ccgen: cannot read ledger: %s\n" e;
        exit 2
    in
    List.iter (fun c -> Printf.eprintf "ccgen: %s\n" c) complaints;
    let records =
      match label with
      | None -> records
      | Some l ->
        List.filter
          (fun (r : Qor.Record.t) -> String.equal r.Qor.Record.label l)
          records
    in
    (* keep the last [last] per label, preserving file order *)
    let keep =
      let counts = Hashtbl.create 16 in
      List.iter
        (fun (r : Qor.Record.t) ->
           let l = r.Qor.Record.label in
           Hashtbl.replace counts l
             (1 + Option.value ~default:0 (Hashtbl.find_opt counts l)))
        records;
      let seen = Hashtbl.create 16 in
      List.filter
        (fun (r : Qor.Record.t) ->
           let l = r.Qor.Record.label in
           let i = 1 + Option.value ~default:0 (Hashtbl.find_opt seen l) in
           Hashtbl.replace seen l i;
           i > Hashtbl.find counts l - last)
        records
    in
    if json then
      print_endline
        (Telemetry.Json.to_string
           (Telemetry.Json.Arr (List.map Qor.Record.to_json keep)))
    else if keep = [] then
      Printf.printf "no records%s in %s\n"
        (match label with None -> "" | Some l -> " for " ^ l)
        ledger
    else
      List.iter
        (fun (r : Qor.Record.t) ->
           let t = r.Qor.Record.provenance.Qor.Provenance.timestamp_s in
           let tm = Unix.gmtime t in
           Printf.printf
             "%04d-%02d-%02dT%02d:%02d:%02dZ %-28s %-8s f3dB %8.0f  \
              |INL| %6.3f  vias %5d  p+r %7.2f ms\n"
             (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1) tm.Unix.tm_mday
             tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec r.Qor.Record.label
             (match r.Qor.Record.provenance.Qor.Provenance.git_commit with
              | Some c -> String.sub c 0 (min 8 (String.length c))
              | None -> "-")
             r.Qor.Record.f3db_mhz r.Qor.Record.max_inl_lsb
             r.Qor.Record.via_cuts
             (1e3 *. r.Qor.Record.place_route_s))
        keep
  in
  let doc = "Show the QoR trend stored in the ledger." in
  Cmd.v (Cmd.info "history" ~doc)
    Term.(const run $ ledger_arg $ last_arg $ label_arg $ qor_json_arg)

let explain_cmd =
  let top_arg =
    let doc = "Show only the $(docv) largest delay contributors." in
    Arg.(value & opt int 10 & info [ "top" ] ~docv:"K" ~doc)
  in
  let run bits style granularity tech top json verbose =
    setup_logs verbose;
    check_bits bits;
    let style = resolve_style ~bits ~granularity style in
    let r = Ccdac.Flow.run ~tech ~bits style in
    let e = Qor.Explain.of_result r in
    if json then
      print_endline (Telemetry.Json.to_string (Qor.Explain.to_json e))
    else print_string (Qor.Explain.text ~top e)
  in
  let doc =
    "Attribute the worst-bit Elmore delay to physical elements (via stacks, \
     wire segments) and the worst-code INL to individual capacitors."
  in
  Cmd.v (Cmd.info "explain" ~doc)
    Term.(const run $ bits_arg $ style_arg $ gran_arg $ tech_arg $ top_arg
          $ qor_json_arg $ verbose_arg)

(* --- sweep --- *)

let sweep_cmd =
  let run bits tech jobs =
    apply_jobs jobs;
    check_bits bits;
    let points =
      Ccdac.Sweep.parallel_sweep ~tech ~bits ~style:Ccplace.Style.Spiral
        [ 1; 2; 3; 4; 5; 6 ]
    in
    print_string (Ccdac.Report.fig6a [ (bits, points) ])
  in
  let doc = "Sweep the number of parallel wires on the spiral (Fig. 6a)." in
  Cmd.v (Cmd.info "sweep" ~doc)
    Term.(const run $ bits_arg $ tech_arg $ jobs_arg)

(* --- serve / request / version: the placement service (docs/SERVE.md) --- *)

let socket_arg =
  let doc = "Unix-domain socket path for the placement service." in
  Arg.(value & opt string "ccgen.sock" & info [ "socket" ] ~docv:"PATH" ~doc)

let port_arg =
  let doc = "Serve over TCP on $(docv) instead of the Unix socket." in
  Arg.(value & opt (some int) None & info [ "port" ] ~docv:"PORT" ~doc)

let host_arg =
  let doc = "TCP host to bind/connect (with $(b,--port))." in
  Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST" ~doc)

let resolve_addr socket host port =
  match port with
  | Some p -> Serve.Daemon.Tcp (host, p)
  | None -> Serve.Daemon.Unix_path socket

let serve_cmd =
  let cache_dir_arg =
    let doc =
      "Directory for the on-disk tier of the result cache (created if \
       missing); omit for in-memory only."
    in
    Arg.(value & opt (some string) None
         & info [ "cache-dir" ] ~docv:"DIR" ~doc)
  in
  let cache_cap_arg =
    let doc = "In-memory result-cache capacity (entries)." in
    Arg.(value & opt int 4096 & info [ "cache-capacity" ] ~docv:"N" ~doc)
  in
  let max_queue_arg =
    let doc =
      "Bounded request-queue depth; beyond it requests get a busy \
       response with retry_after_s (backpressure)."
    in
    Arg.(value & opt int 256 & info [ "max-queue" ] ~docv:"N" ~doc)
  in
  let batch_arg =
    let doc = "Max queued requests scheduled onto the pool per batch." in
    Arg.(value & opt int 32 & info [ "batch" ] ~docv:"N" ~doc)
  in
  let run socket host port cache_dir cache_capacity max_queue batch jobs
      verbose =
    setup_logs verbose;
    apply_jobs jobs;
    let addr = resolve_addr socket host port in
    let engine = Serve.Engine.create ?cache_dir ~cache_capacity () in
    let stats =
      Serve.Daemon.run ~max_queue ~batch
        ~ready:(fun a ->
          Printf.printf "ccgen serve: listening on %s (%s, jobs %d)\n%!" a
            (Serve.Engine.server engine) (Serve.Engine.jobs engine))
        ~engine addr
    in
    Serve.Engine.shutdown engine;
    Printf.printf
      "ccgen serve: drained (served %d, cache hits %d, errors %d, busy %d)\n"
      stats.Serve.Daemon.served stats.Serve.Daemon.cache_hits
      stats.Serve.Daemon.errors stats.Serve.Daemon.busy
  in
  let doc =
    "Run the placement-as-a-service daemon: newline-delimited JSON \
     requests in, QoR-record responses out, with a content-addressed \
     result cache, bounded-queue backpressure and graceful drain on \
     SIGINT/SIGTERM (docs/SERVE.md)."
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(const run $ socket_arg $ host_arg $ port_arg $ cache_dir_arg
          $ cache_cap_arg $ max_queue_arg $ batch_arg $ jobs_arg
          $ verbose_arg)

let request_cmd =
  let raw_arg =
    let doc =
      "Send $(docv) verbatim as the request line instead of composing \
       one from the flags (for probing error handling)."
    in
    Arg.(value & opt (some string) None & info [ "raw" ] ~docv:"JSON" ~doc)
  in
  let seed_arg =
    let doc = "Monte-Carlo substream seed." in
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let trials_arg =
    let doc = "Monte-Carlo trials (0 = skip the mc stage)." in
    Arg.(value & opt int 0 & info [ "trials" ] ~docv:"K" ~doc)
  in
  let id_arg =
    let doc = "Correlation id echoed back in the response." in
    Arg.(value & opt (some string) None & info [ "id" ] ~docv:"ID" ~doc)
  in
  let tech_name_arg =
    let doc = "Technology preset named in the request: finfet or bulk." in
    Arg.(value & opt string "finfet" & info [ "t"; "tech" ] ~docv:"TECH" ~doc)
  in
  let run socket host port raw id style bits granularity seed trials tech =
    let addr = resolve_addr socket host port in
    let line =
      match raw with
      | Some l -> l
      | None ->
        let granularity =
          match style with `Block -> Some granularity | _ -> None
        in
        let style =
          match style with
          | `Spiral -> "spiral"
          | `Chessboard -> "chessboard"
          | `Rowwise -> "rowwise"
          | `Block -> "bc"
        in
        Telemetry.Json.to_string
          (Serve.Request.to_json ?id ?granularity ~seed ~trials ~tech ~style
             ~bits ())
    in
    let client =
      try Serve.Client.connect addr
      with Unix.Unix_error (e, _, _) ->
        Printf.eprintf "ccgen request: cannot connect (%s)\n"
          (Unix.error_message e);
        exit 2
    in
    let reply = Serve.Client.request client line in
    Serve.Client.close client;
    match reply with
    | None ->
      Printf.eprintf "ccgen request: connection closed before a response\n";
      exit 2
    | Some response ->
      print_endline response;
      let status =
        match Telemetry.Json.parse response with
        | Ok j ->
          Option.bind (Telemetry.Json.member "status" j) Telemetry.Json.to_str
        | Error _ -> None
      in
      (match status with
       | Some "ok" -> ()
       | Some "busy" -> exit 3
       | Some _ | None -> exit 1)
  in
  let doc =
    "Send one request to a running placement-service daemon and print \
     the response line (exit 0 ok, 1 error, 2 no connection, 3 busy)."
  in
  Cmd.v (Cmd.info "request" ~doc)
    Term.(const run $ socket_arg $ host_arg $ port_arg $ raw_arg $ id_arg
          $ style_arg $ bits_arg $ gran_arg $ seed_arg $ trials_arg
          $ tech_name_arg)

let version_cmd =
  let run () = print_endline (Serve.Version.server ()) in
  let doc =
    "Print the release version with git/host provenance — the same \
     string stamped into every serve response's server field."
  in
  Cmd.v (Cmd.info "version" ~doc) Term.(const run $ const ())

(* --- devlint: source-level static analysis (shared with bin/cclint) --- *)

let devlint_cmd =
  Cmd.v (Cmd.info "devlint" ~doc:Devlint_cli.doc) Devlint_cli.term

let main =
  let doc =
    "constructive common-centroid placement and routing for binary-weighted \
     capacitor arrays (DATE 2022 reproduction)"
  in
  Cmd.group (Cmd.info "ccgen" ~version:Serve.Version.changelog ~doc)
    [ place_cmd; run_cmd; compare_cmd; tables_cmd; sweep_cmd; profile_cmd;
      scale_cmd; svg_cmd; mc_cmd; verify_cmd; lint_cmd; lvs_cmd; spectrum_cmd;
      record_cmd; diff_cmd; history_cmd; explain_cmd; devlint_cmd; serve_cmd;
      request_cmd; version_cmd ]

(* The verification and LVS gates raise [Verify.Engine.Rejected] on a
   defective layout; turn that into a report and a nonzero exit instead of
   an uncaught-exception backtrace. *)
let () =
  try exit (Cmd.eval ~catch:false main)
  with Verify.Engine.Rejected { what; diagnostics } ->
    Printf.eprintf "ccgen: %s rejected:\n" what;
    prerr_string (Verify.Report.text diagnostics);
    exit 1
