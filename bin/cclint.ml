(* cclint: standalone entry point for the source-level static analyzer.

     cclint --werror              gate the whole tree (CI)
     cclint --json > cclint.json  machine-readable report
     cclint --rules det,domain    one or two rule families only
     cclint --list-rules          the rule catalogue

   [ccgen devlint] is the same tool behind the main CLI. *)

let () =
  let info =
    Cmdliner.Cmd.info "cclint" ~version:"1.6.0" ~doc:Devlint_cli.doc
  in
  exit (Cmdliner.Cmd.eval (Cmdliner.Cmd.v info Devlint_cli.term))
