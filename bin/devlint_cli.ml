(* The source-lint CLI surface, shared by the standalone [cclint]
   executable and the [ccgen devlint] subcommand.  Lives in bin/ (not
   lib/srclint) because it prints and exits — which library code must not
   do, per the very rules it runs. *)

open Cmdliner

let doc =
  "Static analysis of this repository's own OCaml sources: determinism, \
   domain-safety, error-handling and hygiene contracts (docs/SRCLINT.md)."

let root_arg =
  let doc =
    "Repository root to scan; lib/, bin/, bench/ and test/ under it."
  in
  Arg.(value & opt string "." & info [ "root" ] ~docv:"DIR" ~doc)

let werror_arg =
  let doc = "Treat warnings as findings (nonzero exit)." in
  Arg.(value & flag & info [ "werror" ] ~doc)

let json_arg =
  let doc = "Emit the machine-readable JSON report instead of text." in
  Arg.(value & flag & info [ "json" ] ~doc)

let rules_arg =
  let doc =
    "Comma-separated rule ids or families to run (e.g. \
     $(b,det/wall-clock,hyg)); default all."
  in
  Arg.(value & opt (some string) None & info [ "rules" ] ~docv:"IDS" ~doc)

let allowlist_arg =
  let doc = "Suppression file, relative to $(b,--root)." in
  Arg.(value & opt string ".cclint" & info [ "allowlist" ] ~docv:"FILE" ~doc)

let no_allowlist_arg =
  let doc = "Ignore the suppression file (report everything)." in
  Arg.(value & flag & info [ "no-allowlist" ] ~doc)

let list_rules_arg =
  let doc = "Print the rule catalogue and exit." in
  Arg.(value & flag & info [ "list-rules" ] ~doc)

let run root werror json rules allowlist_path no_allowlist list_rules =
  if list_rules then begin
    if json then print_string (Srclint.Report.json_rules ())
    else Format.printf "%a" Srclint.Report.pp_rules ();
    exit 0
  end;
  let rules =
    Option.map
      (fun s ->
         String.split_on_char ',' s
         |> List.map String.trim
         |> List.filter (fun p -> p <> ""))
      rules
  in
  (match rules with
   | Some patterns -> begin
       match Srclint.Registry.pattern_selects_nothing patterns with
       | [] -> ()
       | bad ->
         Printf.eprintf "cclint: --rules selects no known rule: %s\n"
           (String.concat ", " bad);
         exit 2
     end
   | None -> ());
  let allowlist =
    if no_allowlist then Srclint.Allowlist.empty
    else begin
      match Srclint.Allowlist.load (Filename.concat root allowlist_path) with
      | Ok a -> a
      | Error msg ->
        Printf.eprintf "cclint: %s\n" msg;
        exit 2
    end
  in
  let result = Srclint.Engine.run ?rules ~allowlist ~root () in
  if result.Srclint.Engine.files_scanned = 0 then begin
    Printf.eprintf
      "cclint: no .ml files under %s/{lib,bin,bench,test} — wrong --root?\n"
      root;
    exit 2
  end;
  if json then print_string (Srclint.Report.json result)
  else print_string (Srclint.Report.text result);
  if Srclint.Engine.has_findings ~werror result.Srclint.Engine.diagnostics
  then exit 1

let term =
  Term.(
    const run $ root_arg $ werror_arg $ json_arg $ rules_arg $ allowlist_arg
    $ no_allowlist_arg $ list_rules_arg)
