(* The source-lint CLI surface, shared by the standalone [cclint]
   executable and the [ccgen devlint] subcommand.  Lives in bin/ (not
   lib/srclint) because it prints and exits — which library code must not
   do, per the very rules it runs. *)

open Cmdliner

let doc =
  "Static analysis of this repository's own OCaml sources: determinism, \
   domain-safety, error-handling and hygiene contracts (docs/SRCLINT.md)."

let root_arg =
  let doc =
    "Repository root to scan; lib/, bin/, bench/ and test/ under it."
  in
  Arg.(value & opt string "." & info [ "root" ] ~docv:"DIR" ~doc)

let werror_arg =
  let doc = "Treat warnings as findings (nonzero exit)." in
  Arg.(value & flag & info [ "werror" ] ~doc)

let json_arg =
  let doc = "Emit the machine-readable JSON report instead of text." in
  Arg.(value & flag & info [ "json" ] ~doc)

let rules_arg =
  let doc =
    "Comma-separated rule ids or families to run (e.g. \
     $(b,det/wall-clock,hyg)); default all."
  in
  Arg.(value & opt (some string) None & info [ "rules" ] ~docv:"IDS" ~doc)

let allowlist_arg =
  let doc = "Suppression file, relative to $(b,--root)." in
  Arg.(value & opt string ".cclint" & info [ "allowlist" ] ~docv:"FILE" ~doc)

let no_allowlist_arg =
  let doc = "Ignore the suppression file (report everything)." in
  Arg.(value & flag & info [ "no-allowlist" ] ~doc)

let list_rules_arg =
  let doc = "Print the rule catalogue and exit." in
  Arg.(value & flag & info [ "list-rules" ] ~doc)

let typed_arg =
  let doc =
    "Force the typed whole-program pass (lib/ccdeps: $(b,int/*), \
     $(b,arch/*)); error if no .cmt files exist under \
     $(b,_build/default/lib).  Default: the pass runs automatically \
     whenever cmts are present."
  in
  Arg.(value & flag & info [ "typed" ] ~doc)

let no_typed_arg =
  let doc = "Skip the typed whole-program pass even when cmts exist." in
  Arg.(value & flag & info [ "no-typed" ] ~doc)

let prune_arg =
  let doc =
    "Rewrite the suppression file in place, dropping every entry \
     $(b,meta/stale-suppression) or $(b,meta/duplicate-suppression) \
     would reject, then exit.  Comments and still-live entries are \
     preserved."
  in
  Arg.(value & flag & info [ "prune" ] ~doc)

let prune ~root ~allowlist_path (result : Srclint.Engine.result) =
  let drop =
    List.filter_map
      (fun (s : Srclint.Engine.suppression) ->
         if
           s.Srclint.Engine.matched = 0
           && List.mem s.Srclint.Engine.entry.Srclint.Allowlist.rule_id
                Srclint.Registry.ids
         then Some s.Srclint.Engine.entry.Srclint.Allowlist.line
         else None)
      result.Srclint.Engine.suppressions
  in
  if drop = [] then
    Printf.printf "cclint: nothing to prune in %s\n" allowlist_path
  else begin
    let path = Filename.concat root allowlist_path in
    match In_channel.with_open_bin path In_channel.input_all with
    | contents ->
      let kept =
        String.split_on_char '\n' contents
        |> List.filteri (fun i _ -> not (List.mem (i + 1) drop))
      in
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc (String.concat "\n" kept));
      Printf.printf "cclint: pruned %d dead suppression(s) from %s\n"
        (List.length drop) allowlist_path
    | exception Sys_error msg ->
      Printf.eprintf "cclint: --prune: %s\n" msg;
      exit 2
  end

let run root werror json rules allowlist_path no_allowlist list_rules
    typed_flag no_typed prune_flag =
  if list_rules then begin
    if json then print_string (Srclint.Report.json_rules ())
    else Format.printf "%a" Srclint.Report.pp_rules ();
    exit 0
  end;
  if typed_flag && no_typed then begin
    Printf.eprintf "cclint: --typed and --no-typed are contradictory\n";
    exit 2
  end;
  if prune_flag && no_allowlist then begin
    Printf.eprintf "cclint: --prune needs the suppression file it would \
                    rewrite (drop --no-allowlist)\n";
    exit 2
  end;
  if prune_flag && rules <> None then begin
    Printf.eprintf "cclint: --prune under a --rules filter would drop \
                    entries it never checked; run it unfiltered\n";
    exit 2
  end;
  let rules =
    Option.map
      (fun s ->
         String.split_on_char ',' s
         |> List.map String.trim
         |> List.filter (fun p -> p <> ""))
      rules
  in
  (match rules with
   | Some patterns -> begin
       match Srclint.Registry.pattern_selects_nothing patterns with
       | [] -> ()
       | bad ->
         Printf.eprintf "cclint: --rules selects no known rule: %s\n"
           (String.concat ", " bad);
         exit 2
     end
   | None -> ());
  let allowlist =
    if no_allowlist then Srclint.Allowlist.empty
    else begin
      match Srclint.Allowlist.load (Filename.concat root allowlist_path) with
      | Ok a -> a
      | Error msg ->
        Printf.eprintf "cclint: %s\n" msg;
        exit 2
    end
  in
  let typed =
    if no_typed then None
    else begin
      let have_cmts = Ccdeps.Typed.available ~root in
      if typed_flag && not have_cmts then begin
        Printf.eprintf
          "cclint: --typed: no .cmt files under %s/_build/default/lib — \
           run `dune build` first\n"
          root;
        exit 2
      end;
      if have_cmts then Some (Ccdeps.Typed.run ~root) else None
    end
  in
  let result = Srclint.Engine.run ?rules ~allowlist ?typed ~root () in
  if result.Srclint.Engine.files_scanned = 0 then begin
    Printf.eprintf
      "cclint: no .ml files under %s/{lib,bin,bench,test} — wrong --root?\n"
      root;
    exit 2
  end;
  if prune_flag then prune ~root ~allowlist_path result
  else begin
    if json then print_string (Srclint.Report.json result)
    else print_string (Srclint.Report.text result);
    if Srclint.Engine.has_findings ~werror result.Srclint.Engine.diagnostics
    then exit 1
  end

let term =
  Term.(
    const run $ root_arg $ werror_arg $ json_arg $ rules_arg $ allowlist_arg
    $ no_allowlist_arg $ list_rules_arg $ typed_arg $ no_typed_arg
    $ prune_arg)
