(* Segmented-DAC layout with arbitrary capacitor ratios.

   A 4+4 segmented DAC decodes its four MSBs to a thermometer bank of 15
   equal capacitors (16 C_u each) and keeps four binary LSBs — the
   standard trick to guarantee monotonicity.  The paper's constructive CC
   machinery is ratio-agnostic below the placement styles, so the general
   placements route and extract through the same flow.

   Run with: dune exec examples/segmented_dac.exe *)

let tech = Tech.Process.finfet_12nm

(* capacitor 0 is the grounded terminator; 1..4 binary; 5..19 thermometer *)
let counts = Array.append [| 1; 1; 2; 4; 8 |] (Array.make 15 16)

let describe name p =
  Printf.printf "=== %s ===\n" name;
  (match Ccgrid.Placement.validate p with
   | Ok () -> ()
   | Error m -> failwith m);
  print_string (Ccgrid.Render.ascii p);
  let layout = Ccroute.Layout.route tech p in
  Ccroute.Check.assert_clean layout;
  let par = Extract.Parasitics.extract layout in
  let worst_therm_err =
    (* matching between thermometer segments is what guarantees
       monotonicity: report the worst per-segment centroid error and the
       spread of their gradient-shifted values *)
    let values =
      Array.init 15 (fun i ->
          let ps =
            Array.of_list
              (List.map
                 (Ccgrid.Placement.position tech p)
                 (Ccgrid.Placement.cells_of p (5 + i)))
          in
          Capmodel.Gradient.capacitor_value tech ps)
    in
    let lo = Array.fold_left Float.min Float.infinity values in
    let hi = Array.fold_left Float.max Float.neg_infinity values in
    (hi -. lo) /. (16. *. tech.Tech.Process.unit_cap)
  in
  Printf.printf
    "area %.0f um^2, %d via cuts, %.0f um routing, critical tau %.1f ps\n"
    par.Extract.Parasitics.area par.Extract.Parasitics.total_via_cuts
    par.Extract.Parasitics.total_wirelength
    (par.Extract.Parasitics.critical_elmore_fs /. 1000.);
  Printf.printf "thermometer segment spread under gradient: %.2e (relative)\n\n"
    worst_therm_err

let () =
  Printf.printf
    "4+4 segmented DAC: 15 thermometer segments of 16 cells + binary LSBs\n";
  Printf.printf "(256 unit cells + terminator, %d capacitors)\n\n"
    (Array.length counts);
  describe "general-interleaved (dispersion-oriented)"
    (Ccplace.General.interleaved ~counts);
  describe "general-clustered (interconnect-oriented)"
    (Ccplace.General.clustered ~counts)
