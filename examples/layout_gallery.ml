(* Layout gallery: the ASCII counterparts of the paper's Figs. 2, 3, 4
   and 5 — placements of every style, the connected-group structure the
   router sees, block-chessboard granularities, and the routing-track
   comparison between [7] and the spiral.

   Run with: dune exec examples/layout_gallery.exe *)

let tech = Tech.Process.finfet_12nm

let banner title =
  Printf.printf "\n=== %s ===\n" title

let show_placement title p =
  banner title;
  print_string (Ccgrid.Render.ascii p);
  Printf.printf "legend: %s   (. = dummy)\n" (Ccgrid.Render.legend p)

(* Fig. 2: 6-bit placements of all four styles *)
let fig2 () =
  show_placement "Fig. 2a: 6-bit spiral" (Ccplace.Spiral.place ~bits:6);
  show_placement "Fig. 2b: 6-bit chessboard [7]" (Ccplace.Chessboard.place ~bits:6);
  show_placement "Fig. 2c: 6-bit block chessboard, coarse (g=4)"
    (Ccplace.Block_chess.place ~bits:6 ~core_bits:4 ~granularity:4 ());
  show_placement "Fig. 2d: 6-bit block chessboard, fine (g=1)"
    (Ccplace.Block_chess.place ~bits:6 ~core_bits:4 ~granularity:1 ())

(* Fig. 3: connected capacitor groups of the 6-bit spiral placement *)
let fig3 () =
  banner "Fig. 3: connected capacitor groups (6-bit spiral)";
  let p = Ccplace.Spiral.place ~bits:6 in
  let groups = Ccroute.Group.of_placement p in
  for cap = 2 to 6 do
    let gs = Ccroute.Group.of_cap groups cap in
    Printf.printf "C_%d: %d connected group(s): %s\n" cap (List.length gs)
      (String.concat ", "
         (List.map
            (fun (g : Ccroute.Group.t) ->
               Printf.sprintf "%d cells cols[%d-%d] rows[%d-%d]"
                 (Ccroute.Group.size g) g.Ccroute.Group.col_lo
                 g.Ccroute.Group.col_hi g.Ccroute.Group.row_lo
                 g.Ccroute.Group.row_hi)
            gs))
  done;
  print_newline ();
  print_endline "C_6 highlighted (one connected ring, one short trunk, vias only";
  print_endline "at the input connection - Sec. V):";
  print_string (Ccgrid.Render.ascii_highlight p ~cap:6)

(* Fig. 4: 8-bit block chessboards at several granularities *)
let fig4 () =
  List.iter
    (fun g ->
       show_placement
         (Printf.sprintf "Fig. 4: 8-bit block chessboard, g=%d" g)
         (Ccplace.Block_chess.place ~bits:8 ~granularity:g ()))
    [ 1; 2; 4; 8 ]

(* Fig. 5: routing-track comparison, 8-bit, [7] vs spiral *)
let fig5 () =
  banner "Fig. 5: channel/track usage, 8-bit";
  let report name style =
    let p = Ccplace.Style.place ~bits:8 style in
    let layout = Ccroute.Layout.route tech p in
    let plan = layout.Ccroute.Layout.plan in
    let max_tracks =
      Array.fold_left Int.max 0 plan.Ccroute.Plan.tracks_per_channel
    in
    let par = Extract.Parasitics.extract layout in
    Printf.printf
      "%-14s max tracks/channel %d, total tracks %d, wirelength %.0f um, C^BB %.2f fF\n"
      name max_tracks (Ccroute.Plan.total_tracks plan)
      par.Extract.Parasitics.total_wirelength
      par.Extract.Parasitics.total_coupling_cap
  in
  report "chessboard [7]" Ccplace.Style.Chessboard;
  report "spiral" Ccplace.Style.Spiral;
  print_endline "\nHigh wirelength for [7] is inevitable: cells are spread for";
  print_endline "high dispersion (paper, Fig. 5 caption)."

let () =
  fig2 ();
  fig3 ();
  fig4 ();
  fig5 ()
