(* The dispersion/interconnect tradeoff as a continuous frontier.

   The paper offers discrete points: spiral (fast, worst-matched), block
   chessboards (middle), chessboard (slow, best-matched).  The mirror-pair
   swap refinement (Ccplace.Refine) turns this into a dial: starting from
   the spiral, each accepted swap lowers the major-carry mismatch variance
   and fragments the MSB routing a little.  Sweeping the swap budget traces
   the frontier between the paper's endpoints.

   Run with: dune exec examples/refine_frontier.exe *)

let tech = Tech.Process.finfet_12nm
let bits = 8

let measure placement =
  let layout =
    Ccroute.Layout.route tech
      ~p_of_cap:(Ccroute.Layout.msb_parallel ~bits ~p:2) placement
  in
  let par = Extract.Parasitics.extract layout in
  let nl =
    Dacmodel.Nonlinearity.analyze tech
      ~top_parasitic:par.Extract.Parasitics.total_top_cap placement
  in
  ( Dacmodel.Speed.f3db_mhz ~bits
      ~tau_fs:par.Extract.Parasitics.critical_elmore_fs,
    nl.Dacmodel.Nonlinearity.max_abs_dnl,
    par.Extract.Parasitics.total_via_cuts )

let () =
  Printf.printf
    "Refinement frontier, %d-bit spiral: swap budget -> f3dB vs DNL\n\n" bits;
  Printf.printf "%10s %12s %10s %8s\n" "swaps" "f3dB MHz" "DNL LSB" "vias";
  let spiral = Ccplace.Spiral.place ~bits in
  List.iter
    (fun budget ->
       let placement, stats =
         if budget = 0 then (spiral, None)
         else begin
           let p, s =
             Ccplace.Refine.refine tech ~max_passes:50 ~max_swaps:budget spiral
           in
           (p, Some s)
         end
       in
       let f3db, dnl, vias = measure placement in
       let swaps =
         match stats with
         | Some s -> s.Ccplace.Refine.swaps
         | None -> 0
       in
       Printf.printf "%10d %12.0f %10.3f %8d\n" swaps f3db dnl vias)
    [ 0; 5; 15; 40; 100; 250; 1000 ];
  let chess = Ccplace.Chessboard.place ~bits in
  let f3db, dnl, vias = measure chess in
  Printf.printf "%10s %12.0f %10.3f %8d   (chessboard [7] endpoint)\n"
    "-" f3db dnl vias;
  print_newline ();
  print_endline "Reading the frontier: the first few swaps buy DNL at little";
  print_endline "routing cost; full convergence lands on the chessboard's";
  print_endline "tradeoff point (same parallel-wire policy applied to both) -";
  print_endline "the frontier continuously connects the paper's two endpoints,";
  print_endline "and the paper's discrete styles are particular stops on it."
