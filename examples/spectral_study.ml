(* Dynamic (spectral) characterisation of the layout styles.

   Static INL tells you the worst code error; what a signal chain feels is
   the harmonic distortion that the INL pattern imprints on a
   reconstructed sine.  This example reconstructs a coherently-sampled
   full-swing sine through each placed array (with one common mismatch
   sample, so the comparison is apples-to-apples) and reports SNDR / SFDR
   / THD / dynamic ENOB.

   Run with: dune exec examples/spectral_study.exe *)

let tech = Tech.Process.finfet_12nm
let bits = 8

(* exaggerated mismatch so the styles separate visibly in one sample *)
let noisy = { tech with Tech.Process.mismatch_coeff = 0.02 }

let () =
  Printf.printf
    "Spectral study, %d-bit, one shared mismatch sample (A_f x10)\n\n" bits;
  Printf.printf "ideal quantisation bound: SNDR = %.1f dB\n\n"
    (Dacmodel.Spectrum.ideal_sndr_db ~bits);
  Printf.printf "%-26s %9s %9s %9s %7s\n" "style" "SNDR dB" "SFDR dB" "THD dB"
    "ENOB";
  List.iter
    (fun style ->
       let p = Ccplace.Style.place ~bits style in
       let cov =
         Capmodel.Covariance.build noisy
           (Ccgrid.Placement.positions_by_cap noisy p)
       in
       let sample = Capmodel.Gauss.draw (Capmodel.Gauss.sampler ~seed:7 cov) in
       let s = Dacmodel.Spectrum.analyze noisy ~sample p in
       Printf.printf "%-26s %9.1f %9.1f %9.1f %7.2f\n"
         (Ccplace.Style.name style) s.Dacmodel.Spectrum.sndr_db
         s.Dacmodel.Spectrum.sfdr_db s.Dacmodel.Spectrum.thd_db
         s.Dacmodel.Spectrum.enob)
    [ Ccplace.Style.Spiral;
      Ccplace.Style.Chessboard;
      Ccplace.Style.Rowwise;
      Ccplace.Style.block_default ~bits ];
  print_newline ();
  (* worst spurs of the spiral's spectrum, for the curious *)
  let p = Ccplace.Style.place ~bits Ccplace.Style.Spiral in
  let cov =
    Capmodel.Covariance.build noisy (Ccgrid.Placement.positions_by_cap noisy p)
  in
  let sample = Capmodel.Gauss.draw (Capmodel.Gauss.sampler ~seed:7 cov) in
  let s = Dacmodel.Spectrum.analyze noisy ~sample p in
  let spurs =
    let indexed =
      Array.mapi (fun k v -> (k, v)) s.Dacmodel.Spectrum.spectrum_db
    in
    Array.sort (fun (_, a) (_, b) -> Float.compare b a) indexed;
    Array.to_list indexed
    |> List.filter (fun (k, _) -> k <> s.Dacmodel.Spectrum.signal_bin && k > 0)
    |> List.filteri (fun i _ -> i < 5)
  in
  Printf.printf "spiral's five worst spurs (bin, dBc):";
  List.iter (fun (k, v) -> Printf.printf "  (%d, %.1f)" k v) spurs;
  print_newline ();
  print_endline
    "\nMismatch turns the static INL pattern into harmonics: the dispersed";
  print_endline
    "chessboard keeps the cleanest spectrum, the clustered spiral the";
  print_endline "dirtiest - the same ordering as Table II, now in dB."
