(* Parallel-wire study (the experiment behind the paper's Fig. 6a/6b).

   FinFET metal widths are quantised, so wide wires are built as k parallel
   minimum-width wires: wire R / k, via R / k^2, wire C * k.  This example
   sweeps k for the spiral layout and shows the diminishing returns, then
   normalises every method to the spiral like Fig. 6b.

   Run with: dune exec examples/parallel_wires.exe *)

let () =
  print_endline "f3dB improvement factor vs number of parallel wires k (spiral)";
  print_endline "(ratio of f3dB using k wires to f3dB using 1 wire)\n";
  List.iter
    (fun bits ->
       let points =
         Ccdac.Sweep.parallel_sweep ~bits ~style:Ccplace.Style.Spiral
           [ 1; 2; 3; 4; 5; 6 ]
       in
       let base =
         match points with
         | (_, f) :: _ -> f
         | [] -> 1.
       in
       Printf.printf "%2d-bit:" bits;
       List.iter
         (fun (k, f) -> Printf.printf "  k=%d %.2fx" k (f /. base))
         points;
       print_newline ())
    [ 6; 7; 8; 9; 10 ];
  print_newline ();
  print_endline "Why the k=2 jump can exceed 2x: the trunk-to-branch junction is a";
  print_endline "k x k via array, so via resistance falls as k^2 while wire";
  print_endline "resistance falls as k; the added wire capacitance is small";
  print_endline "against the array capacitance until k grows large.\n";
  print_endline "All methods at k=2 on the MSBs, normalised to spiral (Fig. 6b):";
  List.iter
    (fun bits ->
       let rows = Ccdac.Sweep.row ~bits () in
       let spiral =
         List.fold_left
           (fun acc (r : Ccdac.Flow.result) ->
              if Ccplace.Style.equal r.Ccdac.Flow.style Ccplace.Style.Spiral
              then r.Ccdac.Flow.f3db_mhz
              else acc)
           1. rows
       in
       Printf.printf "%2d-bit:" bits;
       List.iter
         (fun (r : Ccdac.Flow.result) ->
            Printf.printf "  %s %.4f"
              (Ccplace.Style.label r.Ccdac.Flow.style)
              (r.Ccdac.Flow.f3db_mhz /. spiral))
         rows;
       print_newline ())
    [ 6; 8; 10 ]
