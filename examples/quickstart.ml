(* Quickstart: lay out the capacitor array of an 8-bit charge-scaling DAC
   with the spiral method and report every metric the paper cares about.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. run the whole flow: place, route, extract, analyse *)
  let result = Ccdac.Flow.run ~bits:8 Ccplace.Style.Spiral in

  (* 2. look at the placement (cf. the paper's Fig. 2a) *)
  print_endline "Spiral common-centroid placement (row 0 = driver side):";
  print_string (Ccgrid.Render.ascii result.Ccdac.Flow.placement);
  print_endline (Ccgrid.Render.legend result.Ccdac.Flow.placement);
  print_newline ();

  (* 3. the headline metrics *)
  print_string (Ccdac.Report.summary result);
  print_newline ();

  (* 4. compare against the dispersion-optimised chessboard of [7] *)
  let chess = Ccdac.Flow.run ~bits:8 Ccplace.Style.Chessboard in
  Printf.printf
    "Chessboard [7] on the same DAC: f3dB %.0f MHz (%.1fx slower), |DNL| %.3f LSB (%.1fx better)\n"
    chess.Ccdac.Flow.f3db_mhz
    (result.Ccdac.Flow.f3db_mhz /. chess.Ccdac.Flow.f3db_mhz)
    chess.Ccdac.Flow.max_dnl
    (result.Ccdac.Flow.max_dnl /. Float.max 1e-9 chess.Ccdac.Flow.max_dnl);
  print_endline "That is the paper's tradeoff: spiral for speed, chessboard for matching,";
  print_endline "block chessboard (Ccplace.Style.block_family) in between."
