(* Yield-driven unit-capacitor sizing.

   "Increasing C_u can reduce these effects, at the cost of increased
   power.  Moreover, as C_u increases, so does the array area" (Sec. II-A).
   This example runs the Monte-Carlo engine over a range of unit
   capacitances and picks the smallest C_u meeting a 99% linearity yield
   at a tight linearity bound for an 8-bit spiral array, then shows the
   area/speed price of each candidate.

   Run with: dune exec examples/yield_sizing.exe *)

let bits = 8
let bound = 0.06
let target_yield = 0.99
let candidates = [ 0.5; 1.; 2.; 5.; 10.; 20.; 40. ]

let () =
  Printf.printf
    "Unit-cap sizing, %d-bit spiral: smallest Cu with yield >= %.0f%% at %.2f LSB\n\n"
    bits (100. *. target_yield) bound;
  let best, trace =
    Ccdac.Optimize.minimum_unit_cap ~trials:300 ~bound ~target_yield ~bits
      ~style:Ccplace.Style.Spiral candidates
  in
  Printf.printf "%8s %12s %10s %8s %10s %10s\n" "Cu fF" "area um^2" "f3dB MHz"
    "yield" "p95 INL" "p95 DNL";
  List.iter
    (fun (c : Ccdac.Optimize.candidate) ->
       Printf.printf "%8.1f %12.0f %10.0f %7.1f%% %10.3f %10.3f%s\n"
         c.Ccdac.Optimize.unit_cap_ff c.Ccdac.Optimize.area
         c.Ccdac.Optimize.f3db_mhz
         (100. *. c.Ccdac.Optimize.mc.Dacmodel.Montecarlo.yield)
         c.Ccdac.Optimize.mc.Dacmodel.Montecarlo.p95_inl
         c.Ccdac.Optimize.mc.Dacmodel.Montecarlo.p95_dnl
         (match best with
          | Some b when b == c -> "   <= selected"
          | Some _ | None -> ""))
    trace;
  (match best with
   | Some c ->
     Printf.printf "\n-> Cu = %.1f fF meets the target.\n"
       c.Ccdac.Optimize.unit_cap_ff
   | None ->
     Printf.printf "\n-> no candidate meets the target; raise Cu further.\n");
  print_endline
    "\nLarger Cu quadratically shrinks relative mismatch (Pelgrom) but grows";
  print_endline
    "area linearly and slows the array (more capacitance on the same routes)."
