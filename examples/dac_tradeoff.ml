(* Design-space exploration for a DAC capacitor array: which layout style
   should a 6-10 bit charge-scaling DAC use, given a switching-speed target
   and a linearity budget?

   This is the workload the paper's introduction motivates: the DAC
   designer must trade the 3 dB frequency of the array against INL/DNL.

   Run with: dune exec examples/dac_tradeoff.exe [-- min_f3db_mhz] *)

let pick_for ~bits ~min_f3db_mhz =
  let candidates =
    List.map
      (fun style -> Ccdac.Flow.run ~bits style)
      (Ccplace.Style.Spiral :: Ccplace.Style.Chessboard
       :: Ccplace.Style.Rowwise
       :: Ccplace.Style.block_family ~bits)
  in
  let feasible =
    List.filter
      (fun (r : Ccdac.Flow.result) ->
         r.Ccdac.Flow.f3db_mhz >= min_f3db_mhz
         && r.Ccdac.Flow.max_inl <= 0.5 && r.Ccdac.Flow.max_dnl <= 0.5)
      candidates
  in
  (* among feasible layouts, take the best matching (lowest DNL) *)
  let best =
    List.fold_left
      (fun acc r ->
         match acc with
         | None -> Some r
         | Some b ->
           if r.Ccdac.Flow.max_dnl < b.Ccdac.Flow.max_dnl then Some r else acc)
      None feasible
  in
  (candidates, best)

let () =
  let min_f3db_mhz =
    if Array.length Sys.argv > 1 then float_of_string Sys.argv.(1) else 400.
  in
  Printf.printf
    "Layout selection for charge-scaling DACs (target f3dB >= %.0f MHz)\n\n"
    min_f3db_mhz;
  List.iter
    (fun bits ->
       let candidates, best = pick_for ~bits ~min_f3db_mhz in
       Printf.printf "%d-bit DAC\n" bits;
       Printf.printf "  %-26s %10s %8s %8s %10s\n" "style" "f3dB MHz" "INL" "DNL"
         "area um^2";
       List.iter
         (fun (r : Ccdac.Flow.result) ->
            Printf.printf "  %-26s %10.1f %8.3f %8.3f %10.0f%s\n"
              (Ccplace.Style.name r.Ccdac.Flow.style)
              r.Ccdac.Flow.f3db_mhz r.Ccdac.Flow.max_inl r.Ccdac.Flow.max_dnl
              r.Ccdac.Flow.area
              (match best with
               | Some b when b == r -> "   <= selected"
               | Some _ | None -> ""))
         candidates;
       (match best with
        | None ->
          Printf.printf
            "  -> no style meets %.0f MHz with <0.5 LSB linearity at %d bits\n"
            min_f3db_mhz bits
        | Some b ->
          Printf.printf "  -> use %s\n"
            (Ccplace.Style.name b.Ccdac.Flow.style));
       print_newline ())
    [ 6; 7; 8; 9; 10 ]
