(* SAR ADC study: the charge-scaling array as the feedback DAC of a
   successive-approximation ADC — the application targeted by the MOM
   capacitor CC-layout literature the paper builds on ([9], [10], [12]).

   For each placement style we characterise the ADC statically (ramp
   sweep through a behavioural SAR conversion using the actual perturbed
   capacitor values) and report ENOB across Monte-Carlo mismatch samples.

   Run with: dune exec examples/sar_adc.exe *)

let tech = Tech.Process.finfet_12nm
let bits = 8
let mc_samples = 25

let study style =
  let placement = Ccplace.Style.place ~bits style in
  (* nominal (gradient-only) characterisation *)
  let nominal = Dacmodel.Sar.characterise tech ~samples_per_code:16 placement in
  (* Monte-Carlo: ENOB distribution over mismatch samples *)
  let cov =
    Capmodel.Covariance.build tech
      (Ccgrid.Placement.positions_by_cap tech placement)
  in
  let sampler = Capmodel.Gauss.sampler ~seed:2024 cov in
  let enobs =
    List.init mc_samples (fun _ ->
        let sample = Capmodel.Gauss.draw sampler in
        (Dacmodel.Sar.characterise tech ~sample ~samples_per_code:16 placement)
          .Dacmodel.Sar.enob)
  in
  let sorted = List.sort Float.compare enobs in
  let worst =
    match sorted with
    | w :: _ -> w
    | [] -> Float.nan
  in
  let mean =
    List.fold_left ( +. ) 0. enobs /. float_of_int (List.length enobs)
  in
  (nominal, mean, worst)

let () =
  Printf.printf "SAR ADC static characterisation, %d-bit, %d mismatch samples\n\n"
    bits mc_samples;
  Printf.printf "%-14s %10s %10s %8s %11s %11s\n" "style" "INL(LSB)" "DNL(LSB)"
    "missing" "mean ENOB" "worst ENOB";
  List.iter
    (fun style ->
       let nominal, mean_enob, worst_enob = study style in
       Printf.printf "%-14s %10.3f %10.3f %8d %11.2f %11.2f\n"
         (Ccplace.Style.name style) nominal.Dacmodel.Sar.inl_lsb
         nominal.Dacmodel.Sar.dnl_lsb nominal.Dacmodel.Sar.missing_codes
         mean_enob worst_enob)
    [ Ccplace.Style.Spiral;
      Ccplace.Style.Chessboard;
      Ccplace.Style.Rowwise;
      Ccplace.Style.block_default ~bits ];
  print_newline ();
  print_endline "The conversion-rate side of the story: the SAR clock must allow";
  print_endline "the array to settle each bit trial, so the layout's f3dB bounds";
  print_endline "the sample rate (N+2 settling windows per conversion):";
  List.iter
    (fun style ->
       let r = Ccdac.Flow.run ~bits style in
       (* one conversion = N bit trials, each needing a settling window *)
       let settle_fs =
         Dacmodel.Speed.settling_time_fs ~bits ~tau_fs:r.Ccdac.Flow.tau_fs
       in
       let msps = 1. /. (float_of_int bits *. settle_fs *. 1e-15) /. 1e6 in
       Printf.printf "  %-14s f3dB %8.0f MHz -> max ~%.0f MS/s\n"
         (Ccplace.Style.name style) r.Ccdac.Flow.f3db_mhz msps)
    [ Ccplace.Style.Spiral; Ccplace.Style.Chessboard ]
